package solver

// Batched structure-of-arrays evaluation: the solver side of the
// expr batch interpreters (internal/expr/batch.go).
//
// The hot loops of every search stage — the uniform-sampling sweep, the
// prune wave, and the learned-cache delta-check — share one shape: many
// independent inputs (points or boxes) evaluated against the same
// ordered constraint programs. Batching turns each of those loops
// inside out: instead of walking constraints per input, it walks inputs
// per constraint, K lanes per instruction-dispatch pass, with an active
// lane set that shrinks as constraints decide lanes (preserving the
// scalar path's early-exit economics in constraint-major form).
//
// Determinism contract, mirrored from prune.go: BatchLanes NEVER
// affects results. Every lane op is the scalar op applied elementwise
// (see internal/interval lanes.go and the expr fuzz tests), decisions
// are applied in lane order (= frontier/draw order), side effects
// (learned-cache stores, Viable probes, witness copies) fire for
// exactly the lanes and in exactly the order the scalar path fires
// them, and the sampling stages draw randomness in fixed-size blocks so
// RNG consumption is lane-width-invariant (see sampleSatisfying). The
// only observable differences are the config-dependent
// BatchedEvals/ScalarEvals counters and wall-clock time.

import (
	"context"
	"math/rand"

	"compsynth/internal/expr"
	"compsynth/internal/interval"
)

// defaultBatchLanes is the lane width used when Budget.BatchLanes is 0
// (batching on by default). Chosen to keep a batch's stack rows inside
// L1 while amortizing dispatch well past the knee; MaxBatchLanes-wide
// batches pay cache misses for little extra amortization.
const defaultBatchLanes = 16

// sampleBlock is the draw granularity of the batched sampling stages:
// RNG rows are drawn this many at a time, independent of BatchLanes, so
// the random stream consumed by a search is identical for every lane
// width (including 1). See sampleSatisfying.
const sampleBlock = 64

// batchLanes resolves the BatchLanes knob to an effective lane width.
func (b Budget) batchLanes() int {
	switch {
	case b.BatchLanes == 1:
		return 1
	case b.BatchLanes <= 0:
		return defaultBatchLanes
	case b.BatchLanes > expr.MaxBatchLanes:
		return expr.MaxBatchLanes
	}
	return b.BatchLanes
}

// Batch is reusable lane scratch for a System's batched entry points.
// Construct one per goroutine with NewBatch (a Batch is not safe for
// concurrent use) and reuse it across calls; all slices are sized to
// the lane width and the sketch's hole count at construction.
type Batch struct {
	lanes int
	dim   int

	iv *expr.IntervalBatch // interval lanes (constraint diffs are hole-only)
	pt *expr.PointBatch    // point lanes

	mid     []float64 // one midpoint / scalar-path scratch row
	mids    []float64 // lanes midpoint rows, row-major
	corners []float64 // lanes corner rows for the floor check, row-major
	block   []float64 // sampleBlock sample rows, row-major

	// Index-list and flag scratch. Each list has a single owner per
	// call path so lists never alias each other: act is owned by
	// sweepSurvivors (its return value), seq by sequential-lane callers,
	// coldL/cachedL by evalPruneSpan's classification, midL by the
	// midpoint sweep, subL by the delta-check subsets, survL by
	// pruneColdLanes' retained copy of the midpoint-sweep survivors
	// (act itself is clobbered by any re-entrant sweepSurvivors call —
	// see pruneColdLanes).
	act, seq, coldL, cachedL, midL, subL, survL []int
	feas, decided                               []bool
	facts                                       []boxFact
	hashes                                      []uint64
}

// NewBatch returns lane scratch for batched evaluation against this
// system's sketch. lanes is clamped to [1, expr.MaxBatchLanes]; a
// 1-lane batch is valid and makes every batched entry point take its
// scalar path.
func (s *System) NewBatch(lanes int) *Batch {
	if lanes < 1 {
		lanes = 1
	}
	if lanes > expr.MaxBatchLanes {
		lanes = expr.MaxBatchLanes
	}
	dim := len(s.sk.Domains())
	return &Batch{
		lanes:   lanes,
		dim:     dim,
		iv:      expr.NewIntervalBatch(0, dim, lanes),
		pt:      expr.NewPointBatch(0, dim, lanes),
		mid:     make([]float64, dim),
		mids:    make([]float64, lanes*dim),
		corners: make([]float64, lanes*dim),
		block:   make([]float64, sampleBlock*dim),
		act:     make([]int, 0, lanes),
		seq:     make([]int, 0, lanes),
		coldL:   make([]int, 0, lanes),
		cachedL: make([]int, 0, lanes),
		midL:    make([]int, 0, lanes),
		subL:    make([]int, 0, lanes),
		survL:   make([]int, 0, lanes),
		feas:    make([]bool, lanes),
		decided: make([]bool, lanes),
		facts:   make([]boxFact, lanes),
		hashes:  make([]uint64, lanes),
	}
}

// Lanes returns the batch's lane width.
func (b *Batch) Lanes() int { return b.lanes }

// getBatch returns pooled lane scratch of the requested width,
// allocating when the pool is empty or holds a different width. Pair
// with putBatch; the pool only ever amortizes allocation, it never
// changes results (a Batch carries no state across calls).
func (s *System) getBatch(lanes int) *Batch {
	if b, ok := s.batchPool.Get().(*Batch); ok && b.lanes == lanes && b.dim == len(s.sk.Domains()) {
		return b
	}
	return s.NewBatch(lanes)
}

// putBatch returns scratch to the pool.
func (s *System) putBatch(b *Batch) {
	if b != nil {
		s.batchPool.Put(b)
	}
}

// SatisfiesBatch evaluates Satisfies for every point, writing the
// verdicts into out (grown as needed and returned). Points may
// outnumber the batch's lanes; they are swept in lane-width chunks.
// Verdicts are identical to calling Satisfies per point; Viable is
// probed, in point order, only for points that pass every constraint —
// exactly the scalar call pattern.
func (s *System) SatisfiesBatch(b *Batch, points [][]float64, out []bool) []bool {
	if cap(out) < len(points) {
		out = make([]bool, len(points))
	}
	out = out[:len(points)]
	if b.lanes <= 1 {
		for i, pt := range points {
			out[i] = s.Satisfies(pt)
		}
		return out
	}
	for lo := 0; lo < len(points); lo += b.lanes {
		k := min(b.lanes, len(points)-lo)
		seq := b.seq[:0]
		for l := 0; l < k; l++ {
			copy(b.mids[l*b.dim:(l+1)*b.dim], points[lo+l])
			seq = append(seq, l)
			out[lo+l] = false
		}
		for _, l := range s.sweepSurvivors(b, b.mids, b.dim, seq, s.stats) {
			pt := b.mids[l*b.dim : (l+1)*b.dim]
			out[lo+l] = s.viable == nil || s.viable(pt)
		}
	}
	return out
}

// pointLanes evaluates prog over the listed rows of the row-major point
// storage (stride dim) in one batch pass, returning the output column
// parallel to lanes. The column aliases b.pt and is overwritten by the
// next pass.
func (s *System) pointLanes(b *Batch, prog *expr.Program, rows []float64, dim int, lanes []int, stats *Stats) []float64 {
	for x, r := range lanes {
		b.pt.SetHoles(x, rows[r*dim:(r+1)*dim])
	}
	if prog.EvalBatch(b.pt, len(lanes)) {
		if stats != nil {
			stats.BatchedEvals.Add(int64(len(lanes)))
		}
	} else if stats != nil {
		stats.ScalarEvals.Add(int64(len(lanes)))
	}
	return b.pt.Outs(len(lanes))
}

// ivLanes is pointLanes over boxes: one interval-batch pass of prog for
// the listed boxes. The returned columns alias b.iv.
func (s *System) ivLanes(b *Batch, prog *expr.Program, boxes [][]interval.Interval, lanes []int, stats *Stats) (outLo, outHi []float64) {
	for x, j := range lanes {
		b.iv.SetHoles(x, boxes[j])
	}
	if prog.EvalIntervalBatch(b.iv, len(lanes)) {
		if stats != nil {
			stats.BatchedEvals.Add(int64(len(lanes)))
		}
	} else if stats != nil {
		stats.ScalarEvals.Add(int64(len(lanes)))
	}
	return b.iv.Outs(len(lanes))
}

// sweepSurvivors returns, in ascending order, the subset of the listed
// rows whose points pass every preference and tie constraint (Viable is
// the caller's business). Constraint-major: each constraint evaluates
// only the still-active rows in one batch pass, so a constraint that
// kills most lanes early saves the later constraints' work — the
// batched analog of Satisfies' early return. The returned slice aliases
// b.act; lanesIn must not (callers pass b.seq or b.midL). Any later
// sweepSurvivors call on the same batch rewrites b.act's backing array,
// so a caller that can re-enter the batch pipeline before it is done
// with the result (splitOrFloor reaches back in via cornerWitnessBatch)
// must copy it first — see pruneColdLanes.
func (s *System) sweepSurvivors(b *Batch, rows []float64, dim int, lanesIn []int, stats *Stats) []int {
	active := append(b.act[:0], lanesIn...)
	for i := 0; i < len(s.cps) && len(active) > 0; i++ {
		outs := s.pointLanes(b, s.cps[i].diff, rows, dim, active, stats)
		keep := active[:0]
		for x, r := range active {
			if outs[x] > s.margin {
				keep = append(keep, r)
			}
		}
		active = keep
	}
	for i := 0; i < len(s.cts) && len(active) > 0; i++ {
		outs := s.pointLanes(b, s.cts[i].diff, rows, dim, active, stats)
		band := s.cts[i].band
		keep := active[:0]
		for x, r := range active {
			d := outs[x]
			if d < 0 {
				d = -d
			}
			if d <= band {
				keep = append(keep, r)
			}
		}
		active = keep
	}
	return active
}

// sampleSatisfying draws up to `samples` uniform points from the box
// and yields the satisfying ones in draw order; yield returning false
// stops the walk (yield's argument aliases internal scratch — copy to
// retain). Reports whether a yield stopped it.
//
// Randomness is consumed in fixed blocks of sampleBlock rows — the
// whole block is drawn before any of it is evaluated — so the RNG
// stream position depends only on which block the walk stopped in,
// never on the lane width: every BatchLanes value (including 1, the
// scalar path) draws identically and leaves rng in the same state.
// Stats.Samples counts exactly the rows walked up to and including the
// stopping row, which is likewise lane-width-invariant.
func (s *System) sampleSatisfying(ctx context.Context, samples, lanes int, domains []interval.Interval, rng *rand.Rand, stats *Stats, yield func(pt []float64) bool) (stopped bool, err error) {
	if samples <= 0 {
		return false, nil
	}
	dim := len(domains)
	var b *Batch
	var block []float64
	if lanes > 1 {
		b = s.getBatch(lanes)
		defer s.putBatch(b)
		block = b.block
	} else {
		block = make([]float64, sampleBlock*dim)
	}
	for done := 0; done < samples; {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		n := min(sampleBlock, samples-done)
		for r := 0; r < n; r++ {
			fillRandomVector(block[r*dim:(r+1)*dim], domains, rng)
		}
		walked, stop := 0, false
		if b == nil {
			for r := 0; r < n && !stop; r++ {
				walked++
				pt := block[r*dim : (r+1)*dim]
				if s.Satisfies(pt) && !yield(pt) {
					stop = true
				}
			}
		} else {
			for c := 0; c < n && !stop; c += lanes {
				k := min(lanes, n-c)
				seq := b.seq[:0]
				for l := 0; l < k; l++ {
					seq = append(seq, c+l)
				}
				surv := s.sweepSurvivors(b, block, dim, seq, stats)
				si := 0
				for l := 0; l < k && !stop; l++ {
					walked++
					row := c + l
					if si < len(surv) && surv[si] == row {
						si++
						pt := block[row*dim : (row+1)*dim]
						if (s.viable == nil || s.viable(pt)) && !yield(pt) {
							stop = true
						}
					}
				}
			}
		}
		if stats != nil && walked > 0 {
			stats.Samples.Add(int64(walked))
		}
		if stop {
			return true, nil
		}
		done += n
	}
	return false, nil
}

// cornerWitnessBatch is cornerWitness through the batch pipeline: the
// same corner enumeration (mask order, midpoint beyond the enumeration
// cap), swept constraint-major in lane-width chunks, with Viable probed
// in corner order only for constraint-passing corners and the walk
// stopping at the first accepted corner — so the returned witness (a
// copy, or nil) is bit-identical to cornerWitness's. Chunks past the
// accepted corner are never evaluated, matching the scalar early exit.
func (s *System) cornerWitnessBatch(b *Batch, box []interval.Interval, stats *Stats) []float64 {
	d := len(box)
	if d > 8 {
		d = 8 // cap the enumeration; remaining dims stay at midpoint
	}
	dim := b.dim
	total := 1 << d
	for base := 0; base < total; base += b.lanes {
		k := min(b.lanes, total-base)
		seq := b.seq[:0]
		for l := 0; l < k; l++ {
			row := b.corners[l*dim : (l+1)*dim]
			fillMidpoint(row, box)
			mask := base + l
			for i := 0; i < d; i++ {
				if mask&(1<<i) != 0 {
					row[i] = box[i].Hi
				} else {
					row[i] = box[i].Lo
				}
			}
			seq = append(seq, l)
		}
		for _, l := range s.sweepSurvivors(b, b.corners, dim, seq, stats) {
			row := b.corners[l*dim : (l+1)*dim]
			if s.viable == nil || s.viable(row) {
				return append([]float64(nil), row...)
			}
		}
	}
	return nil
}

// evalPruneSpan decides frontier boxes wave[lo:hi] into the matching
// results slots: the batched form of calling evalPruneBox per box.
// Outcomes, learned-cache stores (keys, corner flags, first-refuter
// identity), and Viable/corner probes are identical to the scalar
// loop's, per lane in lane order; see the file comment for the
// determinism argument. A nil or 1-lane batch takes the scalar loop.
func (s *System) evalPruneSpan(wave [][]interval.Interval, lo, hi int, results []pruneResult, minWidths []float64, b *Batch, stats *Stats) {
	k := hi - lo
	if b == nil || b.lanes <= 1 || k <= 1 {
		var mid []float64
		if b != nil {
			mid = b.mid
		} else {
			mid = make([]float64, len(minWidths))
		}
		for i := lo; i < hi; i++ {
			results[i] = s.evalPruneBox(wave[i], minWidths, mid)
		}
		return
	}
	boxes := wave[lo:hi]
	l := s.learned
	cold := b.coldL[:0]
	cached := b.cachedL[:0]
	if l == nil {
		for j := 0; j < k; j++ {
			cold = append(cold, j)
		}
	} else {
		for j := 0; j < k; j++ {
			h := hashBox(boxes[j])
			b.hashes[j] = h
			if fact, ok := l.lookupBox(h, boxes[j]); ok {
				if fact.refuted {
					results[lo+j] = pruneResult{kind: prunePruned}
				} else {
					b.facts[j] = fact
					cached = append(cached, j)
				}
			} else {
				cold = append(cold, j)
			}
		}
	}
	if len(cold) > 0 {
		s.pruneColdLanes(boxes, lo, cold, results, minWidths, b, stats)
	}
	if len(cached) > 0 {
		s.pruneCachedLanes(boxes, lo, cached, results, minWidths, b, stats)
	}
}

// pruneColdLanes is evalPruneBoxCold over a lane set: interval
// refutation constraint-major with active-lane compaction, then the
// fully-feasible fast path, then the batched midpoint probe, then
// split-or-floor. Store rules per lane mirror evalPruneBox's cache-miss
// switch (witnesses never cached; the floor path double-stores exactly
// as the scalar path does via splitOrFloor's internal store).
func (s *System) pruneColdLanes(boxes [][]interval.Interval, lo int, lanes []int, results []pruneResult, minWidths []float64, b *Batch, stats *Stats) {
	l := s.learned
	for _, j := range lanes {
		b.feas[j] = true
	}
	active := lanes // filtered in place (aliases b.coldL, which this path owns)
	for ci := 0; ci < len(s.cps) && len(active) > 0; ci++ {
		cp := &s.cps[ci]
		outLo, outHi := s.ivLanes(b, cp.diff, boxes, active, stats)
		keep := active[:0]
		for x, j := range active {
			if outHi[x] <= s.margin {
				results[lo+j] = pruneResult{kind: prunePruned}
				if l != nil {
					l.storeBox(b.hashes[j], boxes[j], cp.key, false)
				}
				continue
			}
			if !(outLo[x] > s.margin) {
				b.feas[j] = false
			}
			keep = append(keep, j)
		}
		active = keep
	}
	for ci := 0; ci < len(s.cts) && len(active) > 0; ci++ {
		ct := &s.cts[ci]
		outLo, outHi := s.ivLanes(b, ct.diff, boxes, active, stats)
		keep := active[:0]
		for x, j := range active {
			if outLo[x] > ct.band || outHi[x] < -ct.band {
				results[lo+j] = pruneResult{kind: prunePruned}
				if l != nil {
					l.storeBox(b.hashes[j], boxes[j], ct.key, false)
				}
				continue
			}
			if !(outLo[x] >= -ct.band && outHi[x] <= ct.band) {
				b.feas[j] = false
			}
			keep = append(keep, j)
		}
		active = keep
	}
	// Survivors: midpoint probe. Fully-feasible lanes witness their
	// midpoint on interval evidence alone (Viable deliberately not
	// consulted — evalPruneBoxCold's documented semantics); the rest go
	// through the batched Satisfies sweep with Viable probed only for
	// constraint-passing midpoints, in lane order.
	dim := b.dim
	midL := b.midL[:0]
	for _, j := range active {
		row := b.mids[j*dim : (j+1)*dim]
		fillMidpoint(row, boxes[j])
		if b.feas[j] {
			results[lo+j] = pruneResult{kind: pruneWitness, witness: append([]float64(nil), row...)}
		} else {
			midL = append(midL, j)
		}
	}
	if len(midL) == 0 {
		return
	}
	// Copy the survivor list out of b.act: splitOrFloor below re-enters
	// the batch pipeline on floor-level boxes (cornerWitnessBatch →
	// sweepSurvivors), which rewrites b.act's backing array mid-loop —
	// consuming the alias would match lanes against corner-sweep
	// indices, yielding false witnesses or missed ones.
	surv := append(b.survL[:0], s.sweepSurvivors(b, b.mids, dim, midL, stats)...)
	si := 0
	for _, j := range midL {
		row := b.mids[j*dim : (j+1)*dim]
		if si < len(surv) && surv[si] == j {
			si++
			if s.viable == nil || s.viable(row) {
				results[lo+j] = pruneResult{kind: pruneWitness, witness: append([]float64(nil), row...)}
				continue
			}
		}
		res := s.splitOrFloor(boxes[j], minWidths, b.mid, false, b, stats)
		results[lo+j] = res
		if l != nil {
			switch res.kind {
			case pruneSplit:
				l.storeBox(b.hashes[j], boxes[j], "", false)
			case pruneFloor:
				l.storeBox(b.hashes[j], boxes[j], "", true)
			}
			// A corner witness at the floor is not cached, matching
			// evalPruneBox.
		}
	}
}

// pruneCachedLanes is evalPruneBoxCached over a lane set: for each
// constraint stamped after a lane's cached fact, delta-check the
// still-undecided lanes in one batch pass (prefs then ties, index
// order, so the first refuter matches the scalar delta loop), then
// split-or-floor the rest with their cached corner facts.
func (s *System) pruneCachedLanes(boxes [][]interval.Interval, lo int, lanes []int, results []pruneResult, minWidths []float64, b *Batch, stats *Stats) {
	l := s.learned
	for _, j := range lanes {
		b.decided[j] = false
	}
	active := lanes // filtered in place (aliases b.cachedL, which this path owns)
	for ci := 0; ci < len(s.cps) && len(active) > 0; ci++ {
		cp := &s.cps[ci]
		sub := b.subL[:0]
		for _, j := range active {
			if cp.addVersion > b.facts[j].version {
				sub = append(sub, j)
			}
		}
		if len(sub) == 0 {
			continue
		}
		_, outHi := s.ivLanes(b, cp.diff, boxes, sub, stats)
		removed := false
		for x, j := range sub {
			if outHi[x] <= s.margin {
				l.deltaRefutes.Add(1)
				l.storeBox(b.hashes[j], boxes[j], cp.key, false)
				results[lo+j] = pruneResult{kind: prunePruned}
				b.decided[j] = true
				removed = true
			}
		}
		if removed {
			keep := active[:0]
			for _, j := range active {
				if !b.decided[j] {
					keep = append(keep, j)
				}
			}
			active = keep
		}
	}
	for ci := 0; ci < len(s.cts) && len(active) > 0; ci++ {
		ct := &s.cts[ci]
		sub := b.subL[:0]
		for _, j := range active {
			if ct.addVersion > b.facts[j].version {
				sub = append(sub, j)
			}
		}
		if len(sub) == 0 {
			continue
		}
		outLo, outHi := s.ivLanes(b, ct.diff, boxes, sub, stats)
		removed := false
		for x, j := range sub {
			if outLo[x] > ct.band || outHi[x] < -ct.band {
				l.deltaRefutes.Add(1)
				l.storeBox(b.hashes[j], boxes[j], ct.key, false)
				results[lo+j] = pruneResult{kind: prunePruned}
				b.decided[j] = true
				removed = true
			}
		}
		if removed {
			keep := active[:0]
			for _, j := range active {
				if !b.decided[j] {
					keep = append(keep, j)
				}
			}
			active = keep
		}
	}
	for _, j := range active {
		results[lo+j] = s.splitOrFloor(boxes[j], minWidths, b.mid, b.facts[j].cornerUnsat, b, stats)
	}
}
