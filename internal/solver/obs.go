package solver

import (
	"time"

	"compsynth/internal/obs"
)

// Metrics bundles the registry instruments of the solver layer. The
// effort counters (samples, repairs, boxes, ...) are read-through
// views over a Stats — the hot path keeps bumping the same atomics it
// always has, and the registry reads them at scrape time — while the
// search-level counters and the latency histogram are written once per
// search, far off the hot path.
//
// A nil *Metrics disables everything (System methods guard the clock
// reads behind a nil check), so instrumentation costs nothing when
// observability is off.
type Metrics struct {
	candidateSearches   *obs.Counter
	distinguishSearches *obs.Counter
	diverseSearches     *obs.Counter
	bestEffortSearches  *obs.Counter
	satVerdicts         *obs.Counter
	unsatVerdicts       *obs.Counter
	unknownVerdicts     *obs.Counter
	searchSeconds       *obs.Histogram
	// pruneDepth distributes branch-and-prune boxes over frontier depth
	// (one observation per processed box, bulked per wave). Deep tails
	// mean the constraint surface resists interval refutation.
	pruneDepth *obs.Histogram
	// seededDepth distributes learned-cache box hits over frontier
	// depth: at which depths cached facts displaced cold evaluation.
	// Mass at shallow depths means whole early waves are replayed from
	// the cache; empty means the cache is cold or detached.
	seededDepth *obs.Histogram
}

// NewMetrics registers the solver instruments on the registry and, if
// stats is non-nil, read-through counter views over its atomics.
// Returns nil when reg is nil.
func NewMetrics(reg *obs.Registry, stats *Stats) *Metrics {
	if reg == nil {
		return nil
	}
	if stats != nil {
		view := func(name, help string, load func() int64) {
			reg.CounterFunc(name, help, func() float64 { return float64(load()) })
		}
		view("compsynth_solver_samples_total", "uniform random hole vectors evaluated", stats.Samples.Load)
		view("compsynth_solver_repairs_total", "hinge-loss repair descents started", stats.Repairs.Load)
		view("compsynth_solver_boxes_total", "branch-and-prune boxes processed", stats.Boxes.Load)
		view("compsynth_solver_boxes_pruned_total", "branch-and-prune boxes refuted by interval bounds", stats.BoxesPruned.Load)
		view("compsynth_solver_prune_steals_total", "work-stealing span steals in the parallel prune engine", stats.Steals.Load)
		view("compsynth_solver_hint_hits_total", "warm-start hints that were directly feasible", stats.HintHits.Load)
		view("compsynth_solver_spec_compiles_total", "constraint difference programs compiled", stats.SpecCompiles.Load)
		view("compsynth_solver_spec_cache_hits_total", "constraint compilations served from the pair cache", stats.SpecCacheHits.Load)
		view("compsynth_solver_batched_evals_total", "constraint lane evaluations through the batched SoA interpreters", stats.BatchedEvals.Load)
		view("compsynth_solver_scalar_evals_total", "batch-pipeline lane evaluations that fell back to scalar evaluation", stats.ScalarEvals.Load)
	}
	return &Metrics{
		candidateSearches:   reg.Counter("compsynth_solver_candidate_searches_total", "FindCandidate searches run"),
		distinguishSearches: reg.Counter("compsynth_solver_distinguish_searches_total", "distinguishing-query searches run"),
		diverseSearches:     reg.Counter("compsynth_solver_diverse_searches_total", "FindDiverse searches run"),
		bestEffortSearches:  reg.Counter("compsynth_solver_best_effort_searches_total", "BestEffort searches run"),
		satVerdicts:         reg.Counter("compsynth_solver_sat_total", "searches ending sat"),
		unsatVerdicts:       reg.Counter("compsynth_solver_unsat_total", "searches ending unsat"),
		unknownVerdicts:     reg.Counter("compsynth_solver_unknown_total", "searches ending unknown"),
		searchSeconds:       reg.Histogram("compsynth_solver_search_seconds", "per-search wall-clock latency", obs.SecondsBuckets()),
		pruneDepth:          reg.Histogram("compsynth_solver_prune_depth", "branch-and-prune frontier depth per box processed", obs.ExpBuckets(1, 2, 10)),
		seededDepth:         reg.Histogram("compsynth_solver_seeded_wave_depth", "frontier depth of boxes served from the learned-prune cache", obs.ExpBuckets(1, 2, 10)),
	}
}

// RegisterLearnedMetrics registers read-through views over a learned
// cache's counters, mirroring the Stats views in NewMetrics. Safe to
// call with either argument nil.
func RegisterLearnedMetrics(reg *obs.Registry, l *Learned) {
	if reg == nil || l == nil {
		return
	}
	view := func(name, help string, load func() int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(load()) })
	}
	view("compsynth_solver_learned_box_hits_total", "prune boxes served from the learned cache", l.boxHits.Load)
	view("compsynth_solver_learned_box_misses_total", "prune boxes evaluated cold and recorded", l.boxMisses.Load)
	view("compsynth_solver_learned_delta_refutes_total", "cached undecided boxes refuted by delta-checking newly added constraints", l.deltaRefutes.Load)
	view("compsynth_solver_learned_point_hits_total", "hint points skipped via cached Satisfies failures", l.pointHits.Load)
	view("compsynth_solver_learned_invalidations_total", "constraint removals that bumped the cache epoch", l.invalidations.Load)
	reg.GaugeFunc("compsynth_solver_learned_entries", "live box entries in the learned cache", func() float64 {
		return float64(l.Len())
	})
}

// observePruneDepth records `boxes` processed boxes at one frontier
// depth — called once per wave, off the box-evaluation hot path.
func (m *Metrics) observePruneDepth(depth, boxes int) {
	if m == nil {
		return
	}
	m.pruneDepth.ObserveN(float64(depth), int64(boxes))
}

// observeSeededDepth records `hits` learned-cache hits at one frontier
// depth — called once per wave when any box was served from the cache.
func (m *Metrics) observeSeededDepth(depth int, hits int64) {
	if m == nil {
		return
	}
	m.seededDepth.ObserveN(float64(depth), hits)
}

// observe records one completed search. kind is nil when the search
// has no per-kind counter; st < 0 means "no verdict" (BestEffort,
// FindDiverse).
func (m *Metrics) observe(kind *obs.Counter, d time.Duration, st Status, hasStatus bool) {
	if m == nil {
		return
	}
	kind.Inc()
	m.searchSeconds.Observe(d.Seconds())
	if !hasStatus {
		return
	}
	switch st {
	case StatusSat:
		m.satVerdicts.Inc()
	case StatusUnsat:
		m.unsatVerdicts.Inc()
	case StatusUnknown:
		m.unknownVerdicts.Inc()
	}
}
