package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"compsynth/internal/expr"
	"compsynth/internal/interval"
	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
)

// pruneOnly returns options that skip the sampling/repair stages so a
// search exercises nothing but the branch-and-prune engine.
func pruneOnly(workers int) Options {
	opts := DefaultOptions()
	opts.Samples = 0
	opts.RepairRestarts = 0
	opts.RepairSteps = 0
	opts.PruneWorkers = workers
	return opts
}

// contradictoryProblem is UNSAT by construction (a > b and b > a), so
// the prune engine must exhaust the hole box to refute it.
func contradictoryProblem() Problem {
	return Problem{
		Sketch: sketch.SWAN(),
		Prefs: []Pref{
			{Better: scenario.Scenario{5, 10}, Worse: scenario.Scenario{2, 100}},
			{Better: scenario.Scenario{2, 100}, Worse: scenario.Scenario{5, 10}},
		},
		Margin: 1e-9,
	}
}

type pruneOutcome struct {
	holes  []float64
	status Status
	boxes  int64
	pruned int64
}

// runPrune executes a prune-only FindCandidate and captures everything
// that must be invariant under the worker count: the verdict, the
// witness bits, and the deterministic effort counters. Steals are the
// one scheduling-dependent counter and are deliberately excluded.
func runPrune(t *testing.T, p Problem, mod func(*Options), workers int) pruneOutcome {
	t.Helper()
	stats := &Stats{}
	opts := pruneOnly(workers)
	opts.Stats = stats
	if mod != nil {
		mod(&opts)
	}
	h, st, err := Compile(p, stats).FindCandidate(context.Background(), opts, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("workers=%d: unexpected error: %v", workers, err)
	}
	return pruneOutcome{holes: h, status: st, boxes: stats.Boxes.Load(), pruned: stats.BoxesPruned.Load()}
}

// TestPruneWorkerCountInvariance is the engine's central property: for
// sat, unsat, and budget-truncated (unknown) instances, the verdict,
// the witness, and the deterministic counters are bit-identical for
// every PruneWorkers value — unlike the sampling stage, where Workers
// partitions the RNG budget and is only deterministic per (seed,
// Workers) pair.
func TestPruneWorkerCountInvariance(t *testing.T) {
	sat, _ := swanProblem(t, 20, 31)
	cases := []struct {
		name string
		p    Problem
		mod  func(*Options)
		want Status
	}{
		{"sat", sat, nil, StatusSat},
		{"unsat", contradictoryProblem(), func(o *Options) {
			o.MinBoxWidth = 1.0 / 32
			o.MaxBoxes = 2_000_000
		}, StatusUnsat},
		{"truncated", contradictoryProblem(), func(o *Options) {
			// Budget far below what refutation needs: the frontier is cut
			// at a deterministic index and the verdict degrades to unknown.
			o.MinBoxWidth = 1.0 / 1024
			o.MaxBoxes = 37
		}, StatusUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runPrune(t, tc.p, tc.mod, 1)
			if base.status != tc.want {
				t.Fatalf("workers=1: status = %v, want %v", base.status, tc.want)
			}
			for _, workers := range []int{2, 8} {
				got := runPrune(t, tc.p, tc.mod, workers)
				if got.status != base.status {
					t.Errorf("workers=%d: status = %v, want %v", workers, got.status, base.status)
				}
				if len(got.holes) != len(base.holes) {
					t.Fatalf("workers=%d: witness length %d, want %d", workers, len(got.holes), len(base.holes))
				}
				for i := range got.holes {
					if got.holes[i] != base.holes[i] {
						t.Errorf("workers=%d: witness[%d] = %v, want %v (bit-identical)",
							workers, i, got.holes[i], base.holes[i])
					}
				}
				if got.boxes != base.boxes || got.pruned != base.pruned {
					t.Errorf("workers=%d: boxes/pruned = %d/%d, want %d/%d",
						workers, got.boxes, got.pruned, base.boxes, base.pruned)
				}
			}
		})
	}
}

// TestPruneWorkerCountInvarianceGOMAXPROCS pins the ≤0 convention:
// PruneWorkers unset follows the machine and still matches workers=1.
func TestPruneWorkerCountInvarianceGOMAXPROCS(t *testing.T) {
	p, _ := swanProblem(t, 12, 33)
	base := runPrune(t, p, nil, 1)
	got := runPrune(t, p, nil, 0)
	if got.status != base.status {
		t.Fatalf("default workers: status = %v, want %v", got.status, base.status)
	}
	for i := range got.holes {
		if got.holes[i] != base.holes[i] {
			t.Fatalf("default workers: witness diverges at dim %d", i)
		}
	}
}

// TestPruneStealHammer drives wide waves through a high worker count so
// the race detector can chew on the deque pop/steal paths and the
// slot-addressed results writes. Run via `make race`.
func TestPruneStealHammer(t *testing.T) {
	p := contradictoryProblem()
	mod := func(o *Options) {
		o.MinBoxWidth = 1.0 / 64
		o.MaxBoxes = 2_000_000
	}
	base := runPrune(t, p, mod, 1)
	if base.status != StatusUnsat {
		t.Fatalf("status = %v, want unsat", base.status)
	}
	for round := 0; round < 4; round++ {
		got := runPrune(t, p, mod, 16)
		if got.status != base.status || got.boxes != base.boxes || got.pruned != base.pruned {
			t.Fatalf("round %d: outcome (%v, %d, %d) diverged from sequential (%v, %d, %d)",
				round, got.status, got.boxes, got.pruned, base.status, base.boxes, base.pruned)
		}
	}
}

// TestPruneCancellation checks the v1 error contract on the prune path:
// a canceled context surfaces ctx.Err() with StatusUnknown and no
// witness, both pre-canceled and mid-run.
func TestPruneCancellation(t *testing.T) {
	p := contradictoryProblem()
	opts := pruneOnly(2)
	opts.MinBoxWidth = 1.0 / 1024
	opts.MaxBoxes = 2_000_000

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, st, err := Compile(p, nil).FindCandidate(ctx, opts, rand.New(rand.NewSource(5)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st != StatusUnknown || h != nil {
		t.Errorf("canceled search returned (%v, %v), want (nil, unknown)", h, st)
	}

	// Deadline in the past: same contract, DeadlineExceeded flavor.
	dctx, dcancel := context.WithTimeout(context.Background(), -1)
	defer dcancel()
	_, st, err = Compile(p, nil).FindCandidate(dctx, opts, rand.New(rand.NewSource(6)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st != StatusUnknown {
		t.Errorf("status = %v, want unknown", st)
	}
}

// TestFindDiverseSingleCandidateFastPath pins the k ≤ 1 bugfix: the
// single-candidate case must not build the witness pool or partition
// the budget across workers — it delegates to FindCandidate staging and
// returns that one witness (or nothing if the search fails).
func TestFindDiverseSingleCandidateFastPath(t *testing.T) {
	p, _ := swanProblem(t, 10, 91)
	for _, k := range []int{0, 1} {
		stats := &Stats{}
		opts := DefaultOptions()
		opts.Workers = 4
		opts.Stats = stats
		cands, err := Compile(p, stats).FindDiverse(context.Background(), k, opts, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(cands) != 1 {
			t.Fatalf("k=%d: got %d candidates, want 1", k, len(cands))
		}
		if !Satisfies(p, cands[0]) {
			t.Errorf("k=%d: candidate violates constraints", k)
		}
		// The fast path runs one FindCandidate, which stops sampling at the
		// first witness — nowhere near the k>1 pool's exhaustive budget.
		if s := stats.Samples.Load(); s > int64(opts.Samples) {
			t.Errorf("k=%d: %d samples exceeds a single search budget %d — pool path taken?", k, s, opts.Samples)
		}
	}
}

// BenchmarkPruneEngineWorkers measures the wave engine alone on the
// refutation (UNSAT) workload that dominates convergence checks, across
// PruneWorkers values. On multi-core hosts the wave fan-out is the
// speedup; on a single-core host the rows document the engine's
// synchronization overhead instead.
func BenchmarkPruneEngineWorkers(b *testing.B) {
	p := contradictoryProblem()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := pruneOnly(workers)
			opts.MinBoxWidth = 1.0 / 64
			opts.MaxBoxes = 2_000_000
			sys := compileSystem(p, nil)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := NewSearch(sys).FindCandidate(context.Background(), opts, rng)
				if err != nil {
					b.Fatal(err)
				}
				if st != StatusUnsat {
					b.Fatalf("status %v", st)
				}
			}
		})
	}
}

// BenchmarkPruneEngineLanes isolates the batched-evaluation win on the
// single-threaded prune engine: identical work, lane width varied.
// lanes=1 is the scalar path through the batch pipeline.
func BenchmarkPruneEngineLanes(b *testing.B) {
	p := contradictoryProblem()
	for _, lanes := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			opts := pruneOnly(1)
			opts.MinBoxWidth = 1.0 / 64
			opts.MaxBoxes = 2_000_000
			opts.BatchLanes = lanes
			sys := compileSystem(p, nil)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := NewSearch(sys).FindCandidate(context.Background(), opts, rng)
				if err != nil {
					b.Fatal(err)
				}
				if st != StatusUnsat {
					b.Fatalf("status %v", st)
				}
			}
		})
	}
}

// TestPruneColdLanesSurvivorAliasing pins the survivor-scratch copy in
// pruneColdLanes. A floor-level lane ordered ahead of a midpoint
// witness in the same span re-enters sweepSurvivors via splitOrFloor →
// cornerWitnessBatch, which rewrites b.act — the backing array of the
// midpoint-sweep survivor list. Without copying that list first, the
// later lane's survivor check compares against corner-sweep indices,
// dropping the true witness (or fabricating a false one). The span must
// decide bit-identically to the scalar loop — which runs with a nil
// batch here, also covering evalPruneSpan's documented nil-batch path.
func TestPruneColdLanesSurvivorAliasing(t *testing.T) {
	space := scenario.MustNewSpace([]string{"x", "y"},
		[]interval.Interval{interval.New(0, 1), interval.New(0, 1)})
	sk := sketch.MustNew("alias", expr.MustParse(`??h * x - y`), space,
		map[string]interval.Interval{"h": interval.New(0, 1)})
	// f(A) - f(B) = h - 0.5, so the tie holds iff |h - 0.5| <= 0.01.
	p := Problem{Sketch: sk, Ties: []Tie{{
		A: scenario.Scenario{1, 0.5}, B: scenario.Scenario{0, 0}, Band: 0.01,
	}}}
	sys := compileSystem(p, nil)
	wave := [][]interval.Interval{
		// Floor-level (width 0.12 < 0.15): straddles the band, but the
		// midpoint 0.46 and both corners fail, so this lane takes the
		// re-entrant corner sweep and lands at the floor.
		{interval.New(0.40, 0.52)},
		// Midpoint h = 0.5 satisfies the tie exactly: must come back a
		// witness, not a split.
		{interval.New(0.30, 0.70)},
	}
	minWidths := []float64{0.15}

	scalar := make([]pruneResult, len(wave))
	sys.evalPruneSpan(wave, 0, len(wave), scalar, minWidths, nil, nil)
	if scalar[0].kind != pruneFloor || scalar[1].kind != pruneWitness {
		t.Fatalf("scalar reference: kinds = %v/%v, want %v/%v — scenario construction broke",
			scalar[0].kind, scalar[1].kind, pruneFloor, pruneWitness)
	}

	batched := make([]pruneResult, len(wave))
	sys.evalPruneSpan(wave, 0, len(wave), batched, minWidths, sys.NewBatch(4), nil)
	for i := range wave {
		if batched[i].kind != scalar[i].kind {
			t.Errorf("lane %d: batched kind = %v, want %v", i, batched[i].kind, scalar[i].kind)
		}
	}
	if w := batched[1].witness; len(w) != 1 || w[0] != scalar[1].witness[0] {
		t.Errorf("lane 1: batched witness = %v, want %v (bit-identical)", w, scalar[1].witness)
	}
}

// TestBatchLanesInvariance extends the engine's central property to the
// batched evaluation pipeline: for sat, unsat, and budget-truncated
// instances, the verdict, the witness bits, and the deterministic
// counters are bit-identical for every BatchLanes value (off, narrow,
// default, cap) crossed with every PruneWorkers value. BatchLanes is a
// pure throughput knob; only BatchedEvals/ScalarEvals and wall time may
// differ.
func TestBatchLanesInvariance(t *testing.T) {
	sat, _ := swanProblem(t, 20, 31)
	cases := []struct {
		name string
		p    Problem
		mod  func(*Options)
		want Status
	}{
		{"sat", sat, nil, StatusSat},
		{"unsat", contradictoryProblem(), func(o *Options) {
			o.MinBoxWidth = 1.0 / 32
			o.MaxBoxes = 2_000_000
		}, StatusUnsat},
		{"truncated", contradictoryProblem(), func(o *Options) {
			o.MinBoxWidth = 1.0 / 1024
			o.MaxBoxes = 37
		}, StatusUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runPrune(t, tc.p, func(o *Options) {
				if tc.mod != nil {
					tc.mod(o)
				}
				o.BatchLanes = 1 // scalar reference
			}, 1)
			if base.status != tc.want {
				t.Fatalf("lanes=1: status = %v, want %v", base.status, tc.want)
			}
			for _, lanes := range []int{2, 16, 64} {
				for _, workers := range []int{1, 3} {
					got := runPrune(t, tc.p, func(o *Options) {
						if tc.mod != nil {
							tc.mod(o)
						}
						o.BatchLanes = lanes
					}, workers)
					if got.status != base.status {
						t.Errorf("lanes=%d workers=%d: status = %v, want %v", lanes, workers, got.status, base.status)
					}
					if len(got.holes) != len(base.holes) {
						t.Fatalf("lanes=%d workers=%d: witness length %d, want %d", lanes, workers, len(got.holes), len(base.holes))
					}
					for i := range got.holes {
						if got.holes[i] != base.holes[i] {
							t.Errorf("lanes=%d workers=%d: witness[%d] = %v, want %v (bit-identical)",
								lanes, workers, i, got.holes[i], base.holes[i])
						}
					}
					if got.boxes != base.boxes || got.pruned != base.pruned {
						t.Errorf("lanes=%d workers=%d: boxes/pruned = %d/%d, want %d/%d",
							lanes, workers, got.boxes, got.pruned, base.boxes, base.pruned)
					}
				}
			}
		})
	}
}

// TestBatchLanesSamplingInvariance pins the block-RNG contract of the
// sampling stage: with the prune stage disabled, FindCandidate's
// verdict, witness, and Samples counter are identical for every lane
// width — the whole sample block is drawn before any row is evaluated,
// so the RNG stream and the rows-walked count cannot depend on lanes.
func TestBatchLanesSamplingInvariance(t *testing.T) {
	p, _ := swanProblem(t, 12, 47)
	run := func(lanes int) ([]float64, Status, int64) {
		stats := &Stats{}
		opts := DefaultOptions()
		opts.MaxBoxes = 0 // sampling + repair only
		opts.BatchLanes = lanes
		opts.Stats = stats
		h, st, err := Compile(p, stats).FindCandidate(context.Background(), opts, rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatalf("lanes=%d: unexpected error: %v", lanes, err)
		}
		return h, st, stats.Samples.Load()
	}
	baseH, baseSt, baseSamples := run(1)
	for _, lanes := range []int{2, 16, 64} {
		h, st, samples := run(lanes)
		if st != baseSt {
			t.Errorf("lanes=%d: status = %v, want %v", lanes, st, baseSt)
		}
		if samples != baseSamples {
			t.Errorf("lanes=%d: samples = %d, want %d (rows walked must be lane-width-invariant)", lanes, samples, baseSamples)
		}
		if len(h) != len(baseH) {
			t.Fatalf("lanes=%d: witness length %d, want %d", lanes, len(h), len(baseH))
		}
		for i := range h {
			if h[i] != baseH[i] {
				t.Errorf("lanes=%d: witness[%d] = %v, want %v (bit-identical)", lanes, i, h[i], baseH[i])
			}
		}
	}
}
