package solver

import (
	"math/rand"
	"strings"
	"testing"

	"compsynth/internal/expr"
	"compsynth/internal/interval"
	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
)

// swanProblem builds a Problem over the SWAN sketch with preferences
// generated from the paper's Figure 2b ground truth.
func swanProblem(t testing.TB, nPrefs int, seed int64) (Problem, *sketch.Candidate) {
	t.Helper()
	sk := sketch.SWAN()
	target, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var prefs []Pref
	for len(prefs) < nPrefs {
		a := sk.Space().Random(rng)
		b := sk.Space().Random(rng)
		fa, fb := target.Eval(a), target.Eval(b)
		switch {
		case fa > fb:
			prefs = append(prefs, Pref{Better: a, Worse: b})
		case fb > fa:
			prefs = append(prefs, Pref{Better: b, Worse: a})
		}
	}
	return Problem{Sketch: sk, Prefs: prefs}, target
}

func TestFindCandidateEmptyProblem(t *testing.T) {
	sk := sketch.SWAN()
	p := Problem{Sketch: sk}
	h, st := FindCandidate(p, DefaultOptions(), rand.New(rand.NewSource(1)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if !sk.InDomain(h) {
		t.Errorf("candidate %v outside domain", h)
	}
}

func TestFindCandidateSatisfiesConstraints(t *testing.T) {
	for _, n := range []int{1, 5, 20, 60} {
		p, _ := swanProblem(t, n, int64(n))
		h, st := FindCandidate(p, DefaultOptions(), rand.New(rand.NewSource(2)))
		if st != StatusSat {
			t.Fatalf("n=%d: status = %v", n, st)
		}
		if !Satisfies(p, h) {
			t.Errorf("n=%d: returned candidate violates constraints", n)
		}
		if !p.Sketch.InDomain(h) {
			t.Errorf("n=%d: candidate outside domain", n)
		}
	}
}

func TestFindCandidateGroundTruthAlwaysFeasible(t *testing.T) {
	// The ground truth itself must satisfy constraints derived from it.
	p, target := swanProblem(t, 100, 77)
	if !Satisfies(p, target.Holes()) {
		t.Fatal("ground truth violates its own preferences")
	}
}

func TestFindCandidateUnsat(t *testing.T) {
	// Contradictory preferences: a > b and b > a.
	sk := sketch.SWAN()
	a := scenario.Scenario{5, 10}
	b := scenario.Scenario{2, 100}
	p := Problem{
		Sketch: sk,
		Prefs:  []Pref{{Better: a, Worse: b}, {Better: b, Worse: a}},
		Margin: 1e-9,
	}
	opts := DefaultOptions()
	opts.Samples = 50
	opts.RepairRestarts = 2
	opts.MinBoxWidth = 1.0 / 32 // keep the exhaustive pass fast
	opts.MaxBoxes = 2_000_000
	_, st := FindCandidate(p, opts, rand.New(rand.NewSource(3)))
	if st != StatusUnsat {
		t.Fatalf("contradictory problem status = %v, want unsat", st)
	}
}

func TestFindCandidateTightConstraint(t *testing.T) {
	// Force a narrow feasible region: prefer a low-latency scenario only
	// barely (both satisfying), pinning slope1 into a small range.
	sk := sketch.SWAN()
	// f(5,10) - f(5,40): with tp_thrsh<=5, l_thrsh>=40, both satisfying:
	// diff = slope1*5*(40-10) = 150*slope1. Require diff > margin and
	// reverse constraint on scaled scenarios to squeeze slope1.
	p := Problem{
		Sketch: sk,
		Prefs: []Pref{
			// These only pin behavior, feasibility remains nonempty.
			{Better: scenario.Scenario{5, 10}, Worse: scenario.Scenario{5, 40}},
			{Better: scenario.Scenario{9, 150}, Worse: scenario.Scenario{1, 150}},
			{Better: scenario.Scenario{5, 10}, Worse: scenario.Scenario{0.2, 5}},
		},
	}
	h, st := FindCandidate(p, DefaultOptions(), rand.New(rand.NewSource(4)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if !Satisfies(p, h) {
		t.Error("candidate violates constraints")
	}
}

func TestViolationZeroIffSatisfies(t *testing.T) {
	p, target := swanProblem(t, 30, 5)
	rng := rand.New(rand.NewSource(6))
	if violation(p, target.Holes()) != 0 {
		t.Error("ground truth has positive violation")
	}
	for i := 0; i < 200; i++ {
		h := randomVector(p.Sketch.Domains(), rng)
		sat := Satisfies(p, h)
		v := violation(p, h)
		if sat != (v == 0) {
			t.Fatalf("Satisfies=%v but violation=%v for %v", sat, v, h)
		}
	}
}

func TestFindDiverse(t *testing.T) {
	p, _ := swanProblem(t, 5, 9)
	cands := FindDiverse(p, 6, DefaultOptions(), rand.New(rand.NewSource(7)))
	if len(cands) < 2 {
		t.Fatalf("only %d diverse candidates for weak constraints", len(cands))
	}
	for _, c := range cands {
		if !Satisfies(p, c) {
			t.Error("diverse candidate violates constraints")
		}
	}
	// No duplicates.
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			same := true
			for d := range cands[i] {
				if cands[i][d] != cands[j][d] {
					same = false
					break
				}
			}
			if same {
				t.Error("duplicate candidates returned")
			}
		}
	}
}

func TestFindDiverseOverconstrained(t *testing.T) {
	sk := sketch.SWAN()
	a := scenario.Scenario{5, 10}
	b := scenario.Scenario{2, 100}
	p := Problem{
		Sketch: sk,
		Prefs:  []Pref{{Better: a, Worse: b}, {Better: b, Worse: a}},
	}
	opts := DefaultOptions()
	opts.Samples = 40
	opts.RepairRestarts = 2
	opts.MinBoxWidth = 1.0 / 16
	if cands := FindDiverse(p, 4, opts, rand.New(rand.NewSource(8))); len(cands) != 0 {
		t.Errorf("found %d candidates for contradictory constraints", len(cands))
	}
}

func TestFindDistinguishingFindsWitness(t *testing.T) {
	// With few constraints the version space is wide: a distinguishing
	// pair must exist.
	p, _ := swanProblem(t, 3, 11)
	w, st := FindDistinguishing(p, DefaultOptions(), DefaultDistinguishOptions(), rand.New(rand.NewSource(12)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	validateWitness(t, p, w, DefaultDistinguishOptions().Gamma)
}

func validateWitness(t *testing.T, p Problem, w *Distinguishing, gamma float64) {
	t.Helper()
	if !Satisfies(p, w.A) || !Satisfies(p, w.B) {
		t.Error("witness candidates not consistent with constraints")
	}
	da := p.Sketch.Eval(w.X1, w.A) - p.Sketch.Eval(w.X2, w.A)
	db := p.Sketch.Eval(w.X1, w.B) - p.Sketch.Eval(w.X2, w.B)
	if da <= gamma {
		t.Errorf("candidate A margin %v <= gamma %v", da, gamma)
	}
	if db >= -gamma {
		t.Errorf("candidate B margin %v >= -gamma", db)
	}
	if w.Gap <= 0 {
		t.Errorf("gap = %v", w.Gap)
	}
	sp := p.Sketch.Space()
	if !sp.Contains(w.X1) || !sp.Contains(w.X2) {
		t.Error("witness scenarios outside ClosedInRange box")
	}
}

func TestFindDistinguishingManyDistinctPairs(t *testing.T) {
	p, _ := swanProblem(t, 3, 13)
	ws, st := FindDistinguishingMany(p, 3, DefaultOptions(), DefaultDistinguishOptions(), rand.New(rand.NewSource(14)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if len(ws) < 2 {
		t.Fatalf("got %d witnesses", len(ws))
	}
	for _, w := range ws {
		validateWitness(t, p, w, DefaultDistinguishOptions().Gamma)
	}
	for i := range ws {
		for j := i + 1; j < len(ws); j++ {
			if samePair(ws[i], ws[j], p.Sketch.Space()) {
				t.Error("duplicate scenario pairs returned")
			}
		}
	}
	// Gaps are sorted descending.
	for i := 1; i < len(ws); i++ {
		if ws[i].Gap > ws[i-1].Gap {
			t.Error("witnesses not sorted by gap")
		}
	}
}

func TestFindDistinguishingUnknownWhenOverconstrained(t *testing.T) {
	sk := sketch.SWAN()
	a := scenario.Scenario{5, 10}
	b := scenario.Scenario{2, 100}
	p := Problem{Sketch: sk, Prefs: []Pref{{Better: a, Worse: b}, {Better: b, Worse: a}}}
	opts := DefaultOptions()
	opts.Samples = 40
	opts.RepairRestarts = 1
	opts.MinBoxWidth = 1.0 / 8
	opts.MaxBoxes = 2000
	_, st := FindDistinguishing(p, opts, DefaultDistinguishOptions(), rand.New(rand.NewSource(15)))
	if st != StatusUnknown {
		t.Fatalf("status = %v, want unknown (no consistent candidate)", st)
	}
}

func TestFindDistinguishingConvergesOnPointSketch(t *testing.T) {
	// A sketch with an (effectively) unique behavior: hole domain is a
	// point, so all candidates agree and the query must be UNSAT.
	sk := sketch.MustNew("pinned",
		expr.MustParse("throughput - ??s*latency"),
		scenario.SWANSpace(),
		map[string]interval.Interval{"s": interval.Point(2)},
	)
	p := Problem{Sketch: sk}
	_, st := FindDistinguishing(p, DefaultOptions(), DefaultDistinguishOptions(), rand.New(rand.NewSource(16)))
	if st != StatusUnsat {
		t.Fatalf("status = %v, want unsat (behaviorally unique)", st)
	}
}

func TestStatusString(t *testing.T) {
	if StatusSat.String() != "sat" || StatusUnsat.String() != "unsat" || StatusUnknown.String() != "unknown" {
		t.Error("Status strings wrong")
	}
	if Status(42).String() == "" {
		t.Error("unknown status empty string")
	}
}

func TestBranchAndPruneDirect(t *testing.T) {
	// Pin slope via constraints solvable only in a thin slice, check BP
	// finds it without sampling (Samples=0, RepairRestarts=0).
	p, _ := swanProblem(t, 10, 21)
	opts := DefaultOptions()
	opts.Samples = 0
	opts.RepairRestarts = 0
	h, st := FindCandidate(p, opts, rand.New(rand.NewSource(22)))
	if st != StatusSat {
		t.Fatalf("pure branch-and-prune status = %v", st)
	}
	if !Satisfies(p, h) {
		t.Error("BP candidate violates constraints")
	}
}

func TestMarginRespected(t *testing.T) {
	p, _ := swanProblem(t, 10, 31)
	p.Margin = 5.0
	h, st := FindCandidate(p, DefaultOptions(), rand.New(rand.NewSource(32)))
	if st != StatusSat {
		t.Skipf("margin too strict for these constraints: %v", st)
	}
	for _, c := range p.Prefs {
		if diff := p.Sketch.Eval(c.Better, h) - p.Sketch.Eval(c.Worse, h); diff <= p.Margin {
			t.Errorf("constraint satisfied only with slack %v <= margin", diff)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	p, _ := swanProblem(t, 20, 91)
	stats := &Stats{}
	opts := DefaultOptions()
	opts.Stats = stats
	rng := rand.New(rand.NewSource(92))
	h, st := FindCandidate(p, opts, rng)
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if stats.Samples.Load() == 0 && stats.Repairs.Load() == 0 {
		t.Error("no effort recorded")
	}
	// Warm-start hit: re-solve with the witness as hint.
	opts.Hints = [][]float64{h}
	if _, st := FindCandidate(p, opts, rng); st != StatusSat {
		t.Fatalf("hinted status = %v", st)
	}
	if stats.HintHits.Load() != 1 {
		t.Errorf("hint hits = %d, want 1", stats.HintHits.Load())
	}
	if s := stats.String(); !strings.Contains(s, "samples=") || !strings.Contains(s, "hint-hits=1") {
		t.Errorf("Stats.String = %q", s)
	}
}

func TestStatsCountersParallelRaceFree(t *testing.T) {
	p, _ := swanProblem(t, 20, 93)
	stats := &Stats{}
	opts := DefaultOptions()
	opts.Stats = stats
	opts.Workers = 4
	if _, st := FindCandidate(p, opts, rand.New(rand.NewSource(94))); st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if stats.Samples.Load()+stats.Repairs.Load() == 0 {
		t.Error("parallel effort not recorded")
	}
}

func TestTieConstraints(t *testing.T) {
	sk := sketch.SWAN()
	// Tie two scenarios in the unsatisfying region with a tight band:
	// f(2,100) and f(4,100) tie only when slope2 ≈ specific relation.
	// Simpler: tie (t,l)=(3,100) with (6,100): f = t(1 - s2*100); diff
	// = 3*(1-100*s2) - 6*(1-100*s2)... both unsat if thresholds tight.
	p := Problem{
		Sketch: sk,
		Prefs: []Pref{
			// Force the satisfying region to exclude latency 100.
			{Better: scenario.Scenario{5, 10}, Worse: scenario.Scenario{5, 100}},
		},
		Ties: []Tie{
			{A: scenario.Scenario{3, 100}, B: scenario.Scenario{6, 100}, Band: 5},
		},
	}
	h, st := FindCandidate(p, DefaultOptions(), rand.New(rand.NewSource(101)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	diff := sk.Eval(scenario.Scenario{3, 100}, h) - sk.Eval(scenario.Scenario{6, 100}, h)
	if diff < -5-1e-9 || diff > 5+1e-9 {
		t.Errorf("tie violated: diff = %v", diff)
	}
	if !Satisfies(p, h) {
		t.Error("Satisfies rejects its own witness")
	}
}

func TestTieUnsatisfiable(t *testing.T) {
	sk := sketch.SWAN()
	// Prefer a over b strongly AND tie them tightly: contradiction.
	a := scenario.Scenario{5, 10}
	b := scenario.Scenario{2, 100}
	p := Problem{
		Sketch: sk,
		Prefs:  []Pref{{Better: a, Worse: b}},
		Ties:   []Tie{{A: a, B: b, Band: 1e-9}},
		Margin: 1,
	}
	opts := DefaultOptions()
	opts.Samples = 50
	opts.RepairRestarts = 2
	opts.MinBoxWidth = 1.0 / 16
	opts.MaxBoxes = 2_000_000
	if _, st := FindCandidate(p, opts, rand.New(rand.NewSource(102))); st != StatusUnsat {
		t.Errorf("contradictory tie status = %v, want unsat", st)
	}
}

func TestTieViolationAccounting(t *testing.T) {
	sk := sketch.SWAN()
	p := Problem{
		Sketch: sk,
		Ties:   []Tie{{A: scenario.Scenario{5, 10}, B: scenario.Scenario{2, 100}, Band: 1}},
	}
	// The Figure 2b target scores these 955 vs -998: hugely violated.
	target, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	if violation(p, target.Holes()) <= 0 {
		t.Error("tie violation not counted")
	}
	if Satisfies(p, target.Holes()) {
		t.Error("violated tie satisfied")
	}
}
