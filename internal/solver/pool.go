package solver

import (
	"context"
	"math/rand"
	"time"

	"compsynth/internal/scenario"
)

// DistinguishPool is the raw material of an active query-planning
// round: a pool of consistent candidate objectives, a shared pool of
// random scenario pairs, and the full score matrix between them. Where
// FindDistinguishingMany collapses this material into witnesses with a
// fixed strategy, the pool hands it to an external planner (package
// planner) that can weigh every pair by expected information gain.
type DistinguishPool struct {
	// Cands are consistent hole vectors (diverse max-min subset of the
	// sampled version space).
	Cands [][]float64
	// X1s/X2s are the shared scenario pair pool; pair s is (X1s[s], X2s[s]).
	X1s, X2s []scenario.Scenario
	// Scores[c][s] = f_c(X1s[s]) − f_c(X2s[s]): positive means candidate
	// c ranks X1s[s] above X2s[s].
	Scores [][]float64
	// Gamma is the behavioral resolution the scores were taken at: a
	// candidate only "votes" on a pair when |score| exceeds Gamma.
	Gamma float64
	// Space is the sketch's metric space (for pair-distinctness tests).
	Space *scenario.Space
}

// Vote returns candidate c's vote on pair s at the pool's Gamma
// resolution: +1 (prefers X1s[s]), −1 (prefers X2s[s]), or 0
// (behaviorally indifferent).
func (p *DistinguishPool) Vote(c, s int) int {
	switch d := p.Scores[c][s]; {
	case d > p.Gamma:
		return 1
	case d < -p.Gamma:
		return -1
	}
	return 0
}

// SamePair reports whether two witnesses use (nearly) the same scenario
// pair in either orientation — the distinctness test
// FindDistinguishingMany applies when assembling a multi-pair round,
// exported for external planners composing their own rounds.
func SamePair(a, b *Distinguishing, space *scenario.Space) bool {
	return samePair(a, b, space)
}

// FindDistinguishPool builds the planning pool: up to dopts.Candidates
// diverse consistent candidates scored against dopts.PairSamples random
// scenario pairs.
//
// Verdicts mirror FindDistinguishingMany's first stage:
//   - StatusSat: pool built (≥ 2 candidates; disagreement not yet
//     established — that is the planner's judgment).
//   - StatusUnsat: exactly one consistent candidate could be found; no
//     disagreement is possible and the synthesis has converged.
//   - StatusUnknown: no consistent candidate at all.
func (s Search) FindDistinguishPool(ctx context.Context, opts Options, dopts DistinguishOptions, rng *rand.Rand) (*DistinguishPool, Status, error) {
	sys := s.sys
	sys.noteSearch()
	var start time.Time
	if sys.metrics != nil {
		start = time.Now()
	}
	pool, st, err := sys.findDistinguishPool(ctx, opts, dopts, rng)
	if sys.metrics != nil {
		sys.metrics.observe(sys.metrics.distinguishSearches, time.Since(start), st, true)
	}
	return pool, st, err
}

func (s *System) findDistinguishPool(ctx context.Context, opts Options, dopts DistinguishOptions, rng *rand.Rand) (*DistinguishPool, Status, error) {
	cands, err := s.findDiverse(ctx, dopts.Candidates, opts, rng)
	if err != nil {
		return nil, StatusUnknown, err
	}
	if len(cands) == 0 {
		return nil, StatusUnknown, nil
	}
	if len(cands) == 1 {
		return nil, StatusUnsat, nil
	}

	space := s.sk.Space()
	// Pre-draw the scenario pair pool once; all candidates are scored
	// against the same pool so that disagreements are comparable. As in
	// findDistinguishingMany, the pool is fresh random scenarios every
	// call, so evaluation stays on the sketch's shared compiled body
	// rather than churning the specialization cache.
	x1s := space.RandomN(rng, dopts.PairSamples)
	x2s := space.RandomN(rng, dopts.PairSamples)
	scores := make([][]float64, len(cands))
	for ci, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, StatusUnknown, err
		}
		row := make([]float64, dopts.PairSamples)
		for si := 0; si < dopts.PairSamples; si++ {
			row[si] = s.sk.Eval(x1s[si], c) - s.sk.Eval(x2s[si], c)
		}
		scores[ci] = row
	}
	return &DistinguishPool{
		Cands:  cands,
		X1s:    x1s,
		X2s:    x2s,
		Scores: scores,
		Gamma:  dopts.Gamma,
		Space:  space,
	}, StatusSat, nil
}

// rawConsistentPool gathers up to k consistent hole vectors WITHOUT
// the greedy max-min diversification findDiverse applies. The planner
// wants the raw sample distribution: max-min selection deliberately
// overweights fringe behaviors, which biases the planner's vote-based
// volume estimates and — near convergence — keeps surfacing residual
// fringe disagreements that stretch the endgame. Raw samples make the
// class weights an unbiased (sampled-volume) prior. The staging mirrors
// findDiverse: warm-start hints first, then satisfying samples, then
// repair top-ups (which land on feasibility boundaries), then the
// single-candidate fallback.
func (s *System) rawConsistentPool(ctx context.Context, k int, opts Options, rng *rand.Rand) ([][]float64, error) {
	domains := s.sk.Domains()
	stats := s.statsOf(opts)
	var pool [][]float64

	for _, hint := range opts.Hints {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h := clampToBox(hint, domains)
		if s.hintSatisfies(h) {
			if stats != nil {
				stats.HintHits.Add(1)
			}
			pool = append(pool, h)
			continue
		}
		if stats != nil {
			stats.Repairs.Add(1)
		}
		if repaired, ok := s.repair(h, domains, opts.RepairSteps, rng); ok {
			pool = append(pool, repaired)
		}
	}
	if len(pool) < k {
		if _, err := s.sampleSatisfying(ctx, opts.Samples, opts.batchLanes(), domains, rng, stats, func(pt []float64) bool {
			pool = append(pool, append([]float64(nil), pt...))
			return len(pool) < k
		}); err != nil {
			return nil, err
		}
	}
	scratch := make([]float64, len(domains))
	for r := 0; r < opts.RepairRestarts && len(pool) < k; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if stats != nil {
			stats.Repairs.Add(1)
		}
		fillRandomVector(scratch, domains, rng)
		if repaired, ok := s.repair(scratch, domains, opts.RepairSteps, rng); ok {
			pool = append(pool, repaired)
		}
	}
	if len(pool) == 0 {
		h, st, err := s.findCandidate(ctx, opts, rng)
		if err != nil {
			return nil, err
		}
		if st == StatusSat {
			pool = append(pool, h)
		}
	}
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool, nil
}
