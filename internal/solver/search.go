package solver

import (
	"context"
	"math/rand"
	"time"
)

// Search is the context-first entry point to the solver — the v1 API.
// It wraps a compiled *System and exposes the same queries with
// cooperative cancellation: every method takes a context and stops at
// the next budget-unit boundary (a sample, a repair restart, a prune
// span) once the context is done.
//
// Error contract: the error is non-nil exactly when the context was
// canceled or its deadline expired, and is then ctx.Err() (possibly
// wrapped). On error the verdict is StatusUnknown and partial results
// must not be interpreted — the search was cut short, not completed.
// Methods never invent their own errors: an uncancellable run always
// terminates with a Status, as before.
//
// Migration from the v0 surface (see DESIGN.md §10):
//
//	FindCandidate(p, opts, rng)            → Compile(p, opts.Stats).FindCandidate(ctx, opts, rng)
//	BestEffort(p, opts, rng)               → Compile(p, opts.Stats).BestEffort(ctx, opts, rng)
//	FindDiverse(p, k, opts, rng)           → Compile(p, opts.Stats).FindDiverse(ctx, k, opts, rng)
//	FindDistinguishing(p, o, d, rng)       → Compile(p, o.Stats).FindDistinguishing(ctx, o, d, rng)
//	sys.FindCandidate(opts, rng)           → NewSearch(sys).FindCandidate(ctx, opts, rng)
//	... and likewise for the other System methods.
//
// A Search is a small value (one pointer); copy it freely. The
// underlying System's mutation rules still apply: searches only read,
// so they may run with Workers/PruneWorkers > 1, but must not race
// AddPref/InsertPref/RemovePref/AddTie/Reset/SetMetrics.
type Search struct {
	sys *System
}

// NewSearch wraps a compiled constraint system. Callers that solve a
// growing problem repeatedly (the synthesizer) hold one System and wrap
// it once; the Search sees constraint mutations through the pointer.
func NewSearch(sys *System) Search { return Search{sys: sys} }

// Compile lowers a Problem and returns its Search — the one-shot
// entry point. Specializations are served from the sketch's cache, so
// repeated compiles of overlapping problems stay cheap.
func Compile(p Problem, stats *Stats) Search {
	return Search{sys: compileSystem(p, stats)}
}

// System returns the underlying compiled system (for constraint
// mutation or introspection).
func (s Search) System() *System { return s.sys }

// FindCandidate searches the hole box for a vector consistent with all
// constraints: (1) warm-start hints, (2) uniform sampling, (3)
// hinge-loss repair, (4) exhaustive interval branch-and-prune (the
// parallel wave engine; see prune.go). Only stage 4 can return
// StatusUnsat; if its box budget runs out first the result is
// StatusUnknown.
func (s Search) FindCandidate(ctx context.Context, opts Options, rng *rand.Rand) ([]float64, Status, error) {
	sys := s.sys
	sys.noteSearch()
	var start time.Time
	if sys.metrics != nil {
		start = time.Now()
	}
	h, st, err := sys.findCandidate(ctx, opts, rng)
	if sys.metrics != nil {
		sys.metrics.observe(sys.metrics.candidateSearches, time.Since(start), st, true)
	}
	return h, st, err
}

// BestEffort returns the lowest-violation hole vector found within the
// sampling/repair budget, its hinge loss (0 means fully consistent),
// and the per-constraint satisfaction mask. On cancellation the
// best-so-far point is still returned alongside the error; callers that
// only want completed searches should discard it when err != nil.
func (s Search) BestEffort(ctx context.Context, opts Options, rng *rand.Rand) (holes []float64, loss float64, satisfied []bool, err error) {
	sys := s.sys
	sys.noteSearch()
	var start time.Time
	if sys.metrics != nil {
		start = time.Now()
	}
	holes, loss, satisfied, err = sys.bestEffort(ctx, opts, rng)
	if sys.metrics != nil {
		sys.metrics.observe(sys.metrics.bestEffortSearches, time.Since(start), 0, false)
	}
	return holes, loss, satisfied, err
}

// FindDiverse returns up to k consistent hole vectors that are mutually
// spread out in the hole box (greedy max-min selection over a witness
// pool). k ≤ 1 takes the single-candidate fast path: it delegates to
// the FindCandidate staging and never builds the pool or the per-worker
// budget partition.
func (s Search) FindDiverse(ctx context.Context, k int, opts Options, rng *rand.Rand) ([][]float64, error) {
	sys := s.sys
	sys.noteSearch()
	var start time.Time
	if sys.metrics != nil {
		start = time.Now()
	}
	out, err := sys.findDiverse(ctx, k, opts, rng)
	if sys.metrics != nil {
		sys.metrics.observe(sys.metrics.diverseSearches, time.Since(start), 0, false)
	}
	return out, err
}

// FindDistinguishing searches for a single distinguishing witness; see
// the Distinguishing type for the verdict semantics.
func (s Search) FindDistinguishing(ctx context.Context, opts Options, dopts DistinguishOptions, rng *rand.Rand) (*Distinguishing, Status, error) {
	wits, st, err := s.FindDistinguishingMany(ctx, 1, opts, dopts, rng)
	if st != StatusSat {
		return nil, st, err
	}
	return wits[0], StatusSat, nil
}

// FindDistinguishingMany returns up to k distinguishing witnesses with
// mutually distinct scenario pairs — used when the synthesizer asks the
// user to rank several pairs per iteration (paper Figure 4).
func (s Search) FindDistinguishingMany(ctx context.Context, k int, opts Options, dopts DistinguishOptions, rng *rand.Rand) ([]*Distinguishing, Status, error) {
	sys := s.sys
	sys.noteSearch()
	var start time.Time
	if sys.metrics != nil {
		start = time.Now()
	}
	wits, st, err := sys.findDistinguishingMany(ctx, k, opts, dopts, rng)
	if sys.metrics != nil {
		sys.metrics.observe(sys.metrics.distinguishSearches, time.Since(start), st, true)
	}
	return wits, st, err
}
