package solver

// The parallel branch-and-prune engine. The UNSAT direction of every
// solver verdict — and therefore the convergence check that terminates
// a synthesis session — runs through here, so this is the path worth
// parallelizing. The design constraint is strict determinism: Status,
// witness, and every transcript downstream must be bit-identical for
// any PruneWorkers value, or golden-transcript reproducibility dies.
//
// The engine achieves that with a wave (frontier-at-a-time) traversal:
//
//   - The frontier is the ordered list of surviving boxes at one
//     depth. Every frontier box still originates from the root split
//     tree — the learned-prune cache (learned.go) seeds waves by
//     *skipping evaluation work* for boxes whose outcome is already
//     proven, never by changing which boxes a wave contains, so
//     frontier composition and budget accounting are bit-identical
//     with the cache on or off.
//   - Evaluating one box is a deterministic function of the box and
//     the constraint set (interval evaluation of compiled constraint
//     programs, a midpoint check, a corner check at the resolution
//     floor — no RNG). With a learned cache attached the evaluation
//     also consults shared memoized facts, but those facts are
//     themselves deterministic consequences of (box, constraints), so
//     boxes of a wave can still be evaluated in any order, by any
//     worker, into a slot-addressed results array.
//   - Work within a wave is distributed through per-worker deques of
//     index spans: owners pop LIFO from the tail, idle workers steal
//     FIFO from the head of the next deque over. Stealing reshuffles
//     only *who* computes a slot, never *what* ends up in it.
//   - The merge then runs sequentially in frontier order: the first
//     witness in wave order wins, surviving splits append their two
//     children in order, and the box budget truncates the frontier at a
//     deterministic index. Unsat (an empty next frontier) is
//     order-independent to begin with.
//
// Contrast with the sampling-stage parallelism in parallel.go, which is
// deterministic only per (seed, Workers) pair: there the worker count
// partitions the RNG budget, here workers never touch randomness at
// all, so the worker count is free to follow the machine.

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"compsynth/internal/interval"
)

// pruneChunk is the span granularity of the wave deques when batching
// is off: boxes are handed out (and stolen) in runs of this many slots.
// Large enough to amortize the deque mutex, small enough that a
// straggler span cannot serialize a wave tail. With batching on the
// span size is the lane width instead, so each span is one batched
// evaluation (see evalPruneSpan in system_batch.go).
const pruneChunk = 8

// pruneKind classifies one box's outcome.
type pruneKind uint8

const (
	// prunePruned: interval bounds refute the box — no solution inside.
	prunePruned pruneKind = iota
	// pruneWitness: a satisfying point was found in the box.
	pruneWitness
	// pruneSplit: undecided — the box was split along its widest
	// dimension (relative to the per-dimension resolution floor).
	pruneSplit
	// pruneFloor: at the resolution floor and still undecided, with no
	// corner witness; the box is dropped (δ-unsat convention).
	pruneFloor
)

// pruneResult is the outcome of evaluating one frontier box. Results
// are written slot-addressed by whichever worker evaluated the box and
// read back in frontier order by the merge.
type pruneResult struct {
	kind        pruneKind
	witness     []float64
	left, right []interval.Interval
}

// pruneSpan is a contiguous run [lo, hi) of frontier indices.
type pruneSpan struct{ lo, hi int }

// pruneDeque is one worker's span queue. The owner pops LIFO from the
// tail (locality: its most recently deferred work); thieves steal FIFO
// from the head (the oldest — and for the initial block layout the
// largest remaining — run). A plain mutex is enough: contention is one
// lock per pruneChunk boxes, and the critical section is a slice
// header update.
type pruneDeque struct {
	mu    sync.Mutex
	spans []pruneSpan
}

func (d *pruneDeque) pop() (pruneSpan, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.spans)
	if n == 0 {
		return pruneSpan{}, false
	}
	sp := d.spans[n-1]
	d.spans = d.spans[:n-1]
	return sp, true
}

func (d *pruneDeque) steal() (pruneSpan, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.spans) == 0 {
		return pruneSpan{}, false
	}
	sp := d.spans[0]
	d.spans = d.spans[1:]
	return sp, true
}

// branchAndPrune exhaustively explores the hole box with the wave
// engine; see the file comment for the determinism argument and
// solver.go for the pruning rules and the δ-unsat convention.
// Constraint intervals come from the pre-specialized programs, so no
// scenario boxes are materialized.
//
// The error is non-nil exactly when ctx was canceled; the verdict is
// then StatusUnknown.
func (s *System) branchAndPrune(ctx context.Context, domains []interval.Interval, opts Options) ([]float64, Status, error) {
	stats := s.statsOf(opts)
	minWidths := make([]float64, len(domains))
	for i, d := range domains {
		minWidths[i] = math.Max(d.Width()*opts.MinBoxWidth, 1e-12)
	}
	workers := opts.PruneWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One reusable lane-scratch Batch per worker slot, shared across all
	// waves of this search (pruneWave may clamp the worker count per
	// wave; extra batches just sit idle those waves).
	batches := make([]*Batch, workers)
	for w := range batches {
		batches[w] = s.NewBatch(opts.batchLanes())
	}

	frontier := [][]interval.Interval{append([]interval.Interval(nil), domains...)}
	budget := opts.MaxBoxes
	var results []pruneResult
	depth := 0
	s.startSearch(len(frontier))
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, StatusUnknown, err
		}
		n, truncated := len(frontier), false
		if n > budget {
			// Deterministic budget cut: only the first `budget` boxes of
			// this wave are processed, exactly as the sequential engine
			// stopped after MaxBoxes pops.
			n, truncated = budget, true
		}
		if n == 0 {
			return nil, StatusUnknown, nil
		}
		budget -= n
		if stats != nil {
			stats.Boxes.Add(int64(n))
		}
		if cap(results) < n {
			results = make([]pruneResult, n)
		}
		results = results[:n]
		var waveHits0 int64
		if s.learned != nil && (s.metrics != nil || s.progress != nil || s.log != nil) {
			waveHits0 = s.learned.boxHits.Load()
		}
		if err := s.pruneWave(ctx, frontier[:n], results, minWidths, workers, batches, stats); err != nil {
			return nil, StatusUnknown, err
		}

		// Merge, in frontier order. The first witness in wave order wins
		// regardless of which worker found it first in wall time.
		pruned := 0
		witness := -1
		for i := range results {
			switch results[i].kind {
			case pruneWitness:
				if witness < 0 {
					witness = i
				}
			case prunePruned:
				pruned++
			}
		}
		if stats != nil && pruned > 0 {
			stats.BoxesPruned.Add(int64(pruned))
		}
		var waveHits int64
		if s.learned != nil && (s.metrics != nil || s.progress != nil || s.log != nil) {
			waveHits = s.learned.boxHits.Load() - waveHits0
		}
		if s.metrics != nil {
			s.metrics.observePruneDepth(depth, n)
			// A "seeded" wave is one where cached facts displaced cold
			// evaluations; the histogram records at which depths the
			// cache is earning its keep.
			if s.learned != nil && waveHits > 0 {
				s.metrics.observeSeededDepth(depth, waveHits)
			}
		}
		s.emitWave(depth, n, pruned, waveHits)
		if witness >= 0 {
			return results[witness].witness, StatusSat, nil
		}
		if truncated {
			return nil, StatusUnknown, nil
		}
		next := make([][]interval.Interval, 0, 2*(n-pruned))
		for i := range results {
			if results[i].kind == pruneSplit {
				next = append(next, results[i].left, results[i].right)
			}
			results[i] = pruneResult{} // release box references early
		}
		frontier = next
		depth++
	}
	return nil, StatusUnsat, nil
}

// pruneWave evaluates wave[i] into results[i] for every i, using up to
// `workers` goroutines over work-stealing span deques. Each span is
// decided by one batched evaluation (evalPruneSpan; one lane per box),
// so the span size follows the lane width of the per-worker batches —
// pruneChunk when batching is off. workers is clamped to the number of
// spans; at one worker the wave runs inline with no goroutines and no
// steal accounting.
func (s *System) pruneWave(ctx context.Context, wave [][]interval.Interval, results []pruneResult, minWidths []float64, workers int, batches []*Batch, stats *Stats) error {
	n := len(wave)
	span := pruneChunk
	if lanes := batches[0].lanes; lanes > 1 {
		span = lanes
	}
	if spans := (n + span - 1) / span; workers > spans {
		workers = spans
	}
	if workers <= 1 {
		b := batches[0]
		for lo := 0; lo < n; lo += span {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := min(lo+span, n)
			s.evalPruneSpan(wave, lo, hi, results, minWidths, b, stats)
		}
		return nil
	}

	// Contiguous block per worker, pre-chunked so thieves can lift work
	// off a busy owner span by span.
	deques := make([]pruneDeque, workers)
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		for c := lo; c < hi; c += span {
			end := c + span
			if end > hi {
				end = hi
			}
			deques[w].spans = append(deques[w].spans, pruneSpan{c, end})
		}
	}
	var steals atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := batches[w]
			for {
				if ctx.Err() != nil {
					return
				}
				sp, ok := deques[w].pop()
				if !ok {
					// Deterministic victim order (w+1, w+2, ...): not needed
					// for result determinism — slots are slots — but it keeps
					// steal pressure evenly spread.
					for off := 1; off < workers && !ok; off++ {
						sp, ok = deques[(w+off)%workers].steal()
					}
					if !ok {
						return // every deque drained; in-flight spans finish elsewhere
					}
					steals.Add(1)
				}
				s.evalPruneSpan(wave, sp.lo, sp.hi, results, minWidths, b, stats)
			}
		}(w)
	}
	wg.Wait()
	if stats != nil {
		if st := steals.Load(); st > 0 {
			stats.Steals.Add(st)
		}
	}
	return ctx.Err()
}

// evalPruneBox decides one box: refuted, witnessed, split, or dropped
// at the floor. Deterministic with respect to the System and its
// constraint set (compiled programs are closure-based and read-only;
// Viable carries the same thread-safety contract the sampling stage
// already imposes; the learned cache only memoizes deterministic
// facts), so it is safe and result-identical under any evaluation
// order. mid is the caller's per-worker scratch vector, len(domains)
// long.
//
// With no learned cache attached this is exactly the cold evaluation.
// With one attached, a cache miss evaluates cold and records the fact;
// a hit takes evalPruneBoxCached, which reproduces the cold decision
// while skipping the probes the cached fact already settles.
func (s *System) evalPruneBox(box []interval.Interval, minWidths []float64, mid []float64) pruneResult {
	l := s.learned
	if l == nil {
		res, _ := s.evalPruneBoxCold(box, minWidths, mid)
		return res
	}
	h := hashBox(box)
	if fact, ok := l.lookupBox(h, box); ok {
		return s.evalPruneBoxCached(h, box, minWidths, mid, fact)
	}
	res, refuter := s.evalPruneBoxCold(box, minWidths, mid)
	switch res.kind {
	case prunePruned:
		l.storeBox(h, box, refuter, false)
	case pruneSplit:
		// Undecided: no present constraint refutes the box and its
		// midpoint fails Satisfies — facts that stay true as constraints
		// are added (see learned.go).
		l.storeBox(h, box, "", false)
	case pruneFloor:
		// As above, plus every corner fails Satisfies.
		l.storeBox(h, box, "", true)
	}
	// pruneWitness is deliberately not cached: a witness ends the search
	// immediately, and "this point satisfies" is not monotone under
	// constraint additions.
	return res
}

// evalPruneBoxCold is the direct evaluation, shared by the no-cache and
// cache-miss paths. The decision sequence is exactly the sequential
// engine's: interval refutation first, then the fully-feasible fast
// path (midpoint accepted on interval evidence alone — Viable is
// deliberately not consulted, matching the documented Problem.Viable
// semantics), then a midpoint probe, then split-or-corner-check.
//
// refuter is the cache key of the first refuting constraint when the
// result is prunePruned and a learned cache is attached; "" otherwise.
func (s *System) evalPruneBoxCold(box []interval.Interval, minWidths []float64, mid []float64) (res pruneResult, refuter string) {
	feasible := true
	for i := range s.cps {
		diff := s.cps[i].diff.EvalInterval(nil, box)
		if diff.Hi <= s.margin {
			return pruneResult{kind: prunePruned}, s.cps[i].key
		}
		if !(diff.Lo > s.margin) {
			feasible = false
		}
	}
	for i := range s.cts {
		diff := s.cts[i].diff.EvalInterval(nil, box)
		if diff.Lo > s.cts[i].band || diff.Hi < -s.cts[i].band {
			return pruneResult{kind: prunePruned}, s.cts[i].key
		}
		if !(diff.Lo >= -s.cts[i].band && diff.Hi <= s.cts[i].band) {
			feasible = false
		}
	}
	fillMidpoint(mid, box)
	if feasible || s.Satisfies(mid) {
		return pruneResult{kind: pruneWitness, witness: append([]float64(nil), mid...)}, ""
	}
	return s.splitOrFloor(box, minWidths, mid, false, nil, nil), ""
}

// evalPruneBoxCached reproduces the cold decision for a box the cache
// already has a valid fact for. Soundness (why each skipped probe would
// have produced the same answer) is argued entry shape by entry shape
// in learned.go and DESIGN.md §11; in brief: a refutation holds while
// its refuting constraint is present, and an undecided entry's negative
// facts (no refutation at version ≤ v, midpoint/corners unsat) are
// monotone under the only mutation the entry's guards admit — constraint
// addition — so only constraints stamped after the entry's version need
// fresh interval checks.
func (s *System) evalPruneBoxCached(h uint64, box []interval.Interval, minWidths []float64, mid []float64, fact boxFact) pruneResult {
	if fact.refuted {
		return pruneResult{kind: prunePruned}
	}
	// Delta-check only the constraints added after the fact's version.
	// Order matches the cold loop (prefs then ties, index order), so the
	// first refuter found here is the first the cold path would find
	// among the new constraints.
	for i := range s.cps {
		if s.cps[i].addVersion <= fact.version {
			continue
		}
		if diff := s.cps[i].diff.EvalInterval(nil, box); diff.Hi <= s.margin {
			s.learned.deltaRefutes.Add(1)
			s.learned.storeBox(h, box, s.cps[i].key, false)
			return pruneResult{kind: prunePruned}
		}
	}
	for i := range s.cts {
		if s.cts[i].addVersion <= fact.version {
			continue
		}
		diff := s.cts[i].diff.EvalInterval(nil, box)
		if diff.Lo > s.cts[i].band || diff.Hi < -s.cts[i].band {
			s.learned.deltaRefutes.Add(1)
			s.learned.storeBox(h, box, s.cts[i].key, false)
			return pruneResult{kind: prunePruned}
		}
	}
	// No refutation. The entry proves the fully-feasible fast path was
	// already blocked by a constraint at version ≤ fact.version (still
	// present — the epoch guard rules out removals) and that the midpoint
	// fails Satisfies (monotone under additions), so both probes are
	// skipped: the cold path would reach split-or-floor exactly as we do.
	return s.splitOrFloor(box, minWidths, mid, fact.cornerUnsat, nil, nil)
}

// splitOrFloor is the undecided-box tail of the decision: split the
// widest dimension relative to its resolution floor, or at the floor
// point-check the corners and drop the box (δ-unsat convention).
// cornerUnsat short-circuits the corner check with a cached "every
// corner fails Satisfies" fact. A non-nil multi-lane batch routes the
// corner check through cornerWitnessBatch (bit-identical witness, one
// sweep pass per lane-width chunk of corners instead of a Satisfies
// call per corner); nil or 1-lane batches take the scalar check.
func (s *System) splitOrFloor(box []interval.Interval, minWidths []float64, mid []float64, cornerUnsat bool, b *Batch, stats *Stats) pruneResult {
	widest, ratio := -1, 1.0
	for i, iv := range box {
		if r := iv.Width() / minWidths[i]; r > ratio {
			widest, ratio = i, r
		}
	}
	if widest < 0 {
		if cornerUnsat {
			return pruneResult{kind: pruneFloor}
		}
		// At the resolution floor and still undecided: point-check the
		// corners. fillMidpoint seeds the dims beyond cornerWitness's
		// enumeration cap (on the cached path mid is stale scratch, so
		// refill it — the cold path arrives with mid already holding the
		// midpoint, and refilling is idempotent).
		var w []float64
		if b != nil && b.lanes > 1 {
			w = s.cornerWitnessBatch(b, box, stats)
		} else {
			fillMidpoint(mid, box)
			w = s.cornerWitness(box, mid)
		}
		if w != nil {
			return pruneResult{kind: pruneWitness, witness: w}
		}
		if s.learned != nil {
			s.learned.storeBox(hashBox(box), box, "", true)
		}
		return pruneResult{kind: pruneFloor}
	}
	l, r := box[widest].Split()
	left := append([]interval.Interval(nil), box...)
	right := append([]interval.Interval(nil), box...)
	left[widest] = l
	right[widest] = r
	return pruneResult{kind: pruneSplit, left: left, right: right}
}
