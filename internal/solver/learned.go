package solver

// The learned-prune cache: cross-iteration reuse of branch-and-prune
// work. Each synthesis iteration adds one preference edge, so the
// constraint system only ever *tightens* — facts the prune engine
// proves about a box stay true as the session progresses:
//
//   - A box refuted by one constraint's interval bounds stays refuted
//     for as long as that constraint is present (evaluation is a pure
//     function of (constraint, box)).
//   - "No constraint with add-version ≤ v refutes this box" stays true
//     for the old constraints; only constraints added after v need a
//     delta check.
//   - A point that fails Satisfies stays failing under constraint
//     additions (satisfaction is monotone-decreasing in the constraint
//     set) — but NOT under removals, which is why point-level facts are
//     guarded by a removal epoch while refutations are guarded by their
//     refuter's presence alone.
//
// The cache is strictly *result-invariant*: it never changes frontier
// composition, budget accounting, witnesses, Status, or the
// deterministic Stats counters — it only skips re-deriving per-box
// facts the monotone constraint history already proved. Golden
// transcripts are therefore bit-identical with the cache on or off
// (pinned by TestGoldenTranscriptLearnedCacheInvariance and the
// differential fuzz in learned_test.go); see DESIGN.md §11 for the
// full soundness argument.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"compsynth/internal/interval"
)

// defaultLearnedCap bounds the number of cached box entries; beyond it
// new boxes are evaluated cold (existing entries keep serving hits).
// At ~100 bytes per entry the default is a few MB per session.
const defaultLearnedCap = 1 << 16

// Learned is a per-session learned-prune cache. It outlives System
// rebuilds: the synthesizer attaches one Learned to its System once
// (SetLearned) and the System reports every constraint addition and
// removal, so cached facts survive Reset + re-add cycles (transitive
// reduction, cycle repair) and die precisely when their supporting
// constraints do.
//
// All methods are safe for concurrent use: prune workers look up and
// insert boxes concurrently during a wave. Races only affect which
// worker pays for an insertion — the facts inserted are deterministic,
// so the cache never influences results.
type Learned struct {
	mu sync.Mutex
	// version counts constraint additions; each added constraint is
	// stamped with its add-version, and undecided box entries record the
	// version they were proven at so later lookups delta-check only the
	// constraints added since.
	version uint64
	// epoch counts constraint removals. Point-level negative facts
	// ("this midpoint/corner/hint fails Satisfies") are monotone under
	// additions but not removals, so they carry the epoch they were
	// proven in and are invalidated wholesale when it moves.
	epoch uint64
	// present counts live constraints by content key. Refuted box
	// entries name their refuting constraint's key and stay valid —
	// across rebuilds and even removal epochs — while that key's count
	// is positive.
	present map[string]int
	boxes   map[uint64][]*learnedBox
	points  map[uint64][]learnedPoint
	nBoxes  int
	nPoints int
	cap     int

	// Counters, exposed through obs as read-through views
	// (RegisterLearnedMetrics). Not part of Stats: the deterministic
	// effort counters there are pinned by invariance tests, and cache
	// traffic is by design not deterministic across cache on/off.
	boxHits       atomic.Int64
	boxMisses     atomic.Int64
	deltaRefutes  atomic.Int64
	pointHits     atomic.Int64
	invalidations atomic.Int64
}

// learnedBox is one cached box fact. Exactly one of two shapes:
//
//   - refuted: refuter names the constraint whose interval bounds
//     refute the box; valid while present[refuter] > 0.
//   - undecided: no constraint with addVersion ≤ version refutes the
//     box, its midpoint fails Satisfies, and (when cornerUnsat) so does
//     every corner at the resolution floor; valid while the removal
//     epoch matches.
type learnedBox struct {
	box         []interval.Interval // exact bounds; hash-collision guard
	refuted     bool
	refuter     string
	version     uint64
	epoch       uint64
	cornerUnsat bool
}

// learnedPoint caches "this hole vector fails Satisfies", used to skip
// re-validating warm-start hints. Monotone under additions only, so
// epoch-guarded like undecided boxes.
type learnedPoint struct {
	pt    []float64
	epoch uint64
}

// NewLearned returns an empty cache holding at most capacity box
// entries (≤ 0 selects the default).
func NewLearned(capacity int) *Learned {
	if capacity <= 0 {
		capacity = defaultLearnedCap
	}
	return &Learned{
		present: make(map[string]int),
		boxes:   make(map[uint64][]*learnedBox),
		points:  make(map[uint64][]learnedPoint),
		cap:     capacity,
	}
}

// LearnedSnapshot is a plain copy of the cache counters.
type LearnedSnapshot struct {
	BoxHits       int64 `json:"box_hits"`
	BoxMisses     int64 `json:"box_misses"`
	DeltaRefutes  int64 `json:"delta_refutes"`
	PointHits     int64 `json:"point_hits"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
}

// Snapshot copies the counters and the live entry count.
func (l *Learned) Snapshot() LearnedSnapshot {
	l.mu.Lock()
	n := l.nBoxes
	l.mu.Unlock()
	return LearnedSnapshot{
		BoxHits:       l.boxHits.Load(),
		BoxMisses:     l.boxMisses.Load(),
		DeltaRefutes:  l.deltaRefutes.Load(),
		PointHits:     l.pointHits.Load(),
		Invalidations: l.invalidations.Load(),
		Entries:       n,
	}
}

// Len returns the number of cached box entries.
func (l *Learned) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nBoxes
}

// constraintAdded registers a constraint's content key and returns its
// add-version. Called by the System on AddPref/InsertPref/AddTie.
func (l *Learned) constraintAdded(key string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version++
	l.present[key]++
	return l.version
}

// constraintRemoved retires one instance of a constraint key and bumps
// the removal epoch, invalidating every point-level fact. Refuted boxes
// whose refuter key still has live instances remain valid.
func (l *Learned) constraintRemoved(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := l.present[key]; n > 1 {
		l.present[key] = n - 1
	} else {
		delete(l.present, key)
	}
	l.epoch++
	l.invalidations.Add(1)
}

// boxFact is the snapshot a lookup hands to the prune engine; it is
// valid for the duration of one box evaluation (constraint sets are
// frozen during a search).
type boxFact struct {
	refuted     bool
	version     uint64
	cornerUnsat bool
}

// lookupBox returns the cached fact for a box, if a valid one exists.
// h must be hashBox(box).
func (l *Learned) lookupBox(h uint64, box []interval.Interval) (boxFact, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.boxes[h] {
		if !sameBox(e.box, box) {
			continue
		}
		if e.refuted {
			if l.present[e.refuter] > 0 {
				l.boxHits.Add(1)
				return boxFact{refuted: true}, true
			}
			return boxFact{}, false // refuter removed; entry is dead weight
		}
		if e.epoch == l.epoch {
			l.boxHits.Add(1)
			return boxFact{version: e.version, cornerUnsat: e.cornerUnsat}, true
		}
		return boxFact{}, false
	}
	l.boxMisses.Add(1)
	return boxFact{}, false
}

// storeBox records a fresh fact for a box. kind mirrors learnedBox: a
// non-empty refuter stores a refutation; otherwise an undecided entry
// at the current version/epoch with the given corner flag.
func (l *Learned) storeBox(h uint64, box []interval.Interval, refuter string, cornerUnsat bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.boxes[h] {
		if sameBox(e.box, box) {
			// Upgrade in place (miss → fresh fact, undecided → refuted,
			// split-entry → cornerUnsat). Races between workers insert the
			// same deterministic facts, so last-write-wins is safe.
			e.refuted = refuter != ""
			e.refuter = refuter
			e.version = l.version
			e.epoch = l.epoch
			e.cornerUnsat = e.cornerUnsat || cornerUnsat
			return
		}
	}
	if l.nBoxes >= l.cap {
		return // full: keep serving existing entries, stop learning new ones
	}
	l.boxes[h] = append(l.boxes[h], &learnedBox{
		box:         append([]interval.Interval(nil), box...),
		refuted:     refuter != "",
		refuter:     refuter,
		version:     l.version,
		epoch:       l.epoch,
		cornerUnsat: cornerUnsat,
	})
	l.nBoxes++
}

// pointKnownUnsat reports whether the hole vector is cached as failing
// Satisfies at the current epoch.
func (l *Learned) pointKnownUnsat(pt []float64) bool {
	h := hashPoint(pt)
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.points[h] {
		if e.epoch == l.epoch && samePoint(e.pt, pt) {
			l.pointHits.Add(1)
			return true
		}
	}
	return false
}

// notePointUnsat records a hole vector that failed Satisfies.
func (l *Learned) notePointUnsat(pt []float64) {
	h := hashPoint(pt)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nPoints >= l.cap {
		return
	}
	for _, e := range l.points[h] {
		if samePoint(e.pt, pt) {
			if e.epoch != l.epoch {
				break // stale entry for the same point; append a fresh one
			}
			return
		}
	}
	l.points[h] = append(l.points[h], learnedPoint{
		pt:    append([]float64(nil), pt...),
		epoch: l.epoch,
	})
	l.nPoints++
}

// forEachRefuted visits every currently valid refuted entry.
func (l *Learned) forEachRefuted(fn func(box []interval.Interval, refuter string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, bucket := range l.boxes {
		for _, e := range bucket {
			if e.refuted && l.present[e.refuter] > 0 {
				fn(e.box, e.refuter)
			}
		}
	}
}

// LearnedSummary is the serializable slice of a learned-prune cache: the
// refuted boxes, each naming the constraint that refuted it by its index
// in the exporting System's constraint order. It is what the service
// layer persists in session checkpoints so a recovered session keeps its
// accumulated prune work.
//
// Only refutations are exported: re-verifying one costs a single
// interval evaluation of the named constraint (importers MUST verify —
// see System.ImportLearned), whereas an undecided entry's facts would
// cost as much to verify as to re-derive, so persisting them buys
// nothing.
type LearnedSummary struct {
	// Refuted lists the proven-infeasible boxes.
	Refuted []RefutedRegion `json:"refuted"`
}

// RefutedRegion is one exported refuted box.
type RefutedRegion struct {
	// Box holds [lo, hi] per hole dimension.
	Box [][2]float64 `json:"box"`
	// Tie selects the constraint table: false indexes preferences,
	// true indexes ties.
	Tie bool `json:"tie,omitempty"`
	// Index is the refuting constraint's position in the exporting
	// System's constraint order. Preference order is canonical (the
	// synthesizer mirrors prefgraph.Edges, and transcript Preload
	// re-interns scenarios in recorded order), so the index resolves to
	// the same constraint after recovery; import re-verifies anyway.
	Index int `json:"index"`
}

// Validate checks structural sanity: consistent dimensionality, finite
// ordered bounds, non-negative indices. Semantic validity (does the
// named constraint actually refute the box?) is the importing System's
// job.
func (s *LearnedSummary) Validate() error {
	dim := -1
	for i, r := range s.Refuted {
		if len(r.Box) == 0 {
			return fmt.Errorf("solver: learned summary region %d is empty", i)
		}
		if dim == -1 {
			dim = len(r.Box)
		}
		if len(r.Box) != dim {
			return fmt.Errorf("solver: learned summary region %d has %d dims, want %d", i, len(r.Box), dim)
		}
		if r.Index < 0 {
			return fmt.Errorf("solver: learned summary region %d has negative constraint index", i)
		}
		for j, b := range r.Box {
			if math.IsNaN(b[0]) || math.IsInf(b[0], 0) || math.IsNaN(b[1]) || math.IsInf(b[1], 0) {
				return fmt.Errorf("solver: learned summary region %d dim %d is not finite", i, j)
			}
			if b[0] > b[1] {
				return fmt.Errorf("solver: learned summary region %d dim %d has lo > hi", i, j)
			}
		}
	}
	return nil
}

// hashBox is a deterministic FNV-1a hash over the box bounds' float
// bits. Deliberately not hash/maphash: its per-process random seed
// would make cache behavior differ across a daemon restart, and the
// collision guard is the exact sameBox comparison anyway.
func hashBox(box []interval.Interval) uint64 {
	h := uint64(14695981039346656037)
	for _, iv := range box {
		h = fnvMix(h, math.Float64bits(iv.Lo))
		h = fnvMix(h, math.Float64bits(iv.Hi))
	}
	return h
}

func hashPoint(pt []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range pt {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

func fnvMix(h, bits uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], bits)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func sameBox(a, b []interval.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Lo) != math.Float64bits(b[i].Lo) ||
			math.Float64bits(a[i].Hi) != math.Float64bits(b[i].Hi) {
			return false
		}
	}
	return true
}

func samePoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// prefKey is the content identity of a preference constraint: the exact
// float bits of both scenarios. Two constraints with equal keys compile
// to the same difference program, so a refutation proved under one
// instance holds for any other.
func prefKey(c Pref) string {
	b := make([]byte, 0, 8*(len(c.Better)+len(c.Worse))+2)
	b = append(b, 'p')
	for _, v := range c.Better {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = append(b, '|')
	for _, v := range c.Worse {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}

// tieKey is the content identity of an indifference constraint.
func tieKey(t Tie) string {
	b := make([]byte, 0, 8*(len(t.A)+len(t.B))+10)
	b = append(b, 't')
	for _, v := range t.A {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = append(b, '|')
	for _, v := range t.B {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Band))
	return string(b)
}
