package solver

import (
	"context"
	"math"
	"math/rand"

	"compsynth/internal/scenario"
)

// Distinguishing is a witness of the paper's §4.2 query: two hole
// vectors A and B, both consistent with the preference constraints, and
// two scenarios X1, X2 they rank oppositely:
//
//	f_A(X1) > f_A(X2)   and   f_B(X2) > f_B(X1)
//
// Gap is the smaller of the two strict margins; it measures how
// decisively the candidates disagree.
type Distinguishing struct {
	A, B   []float64
	X1, X2 scenario.Scenario
	Gap    float64
}

// QueryStrategy selects which distinguishing pair to put in front of
// the user when several exist.
type QueryStrategy int

// Query strategies.
const (
	// SelectMaxGap picks the pair on which two candidates disagree most
	// decisively — it splits the version space along its widest
	// behavioral axis (the default).
	SelectMaxGap QueryStrategy = iota
	// SelectFirst takes the first disagreement found; cheapest per
	// iteration, typically needs more iterations.
	SelectFirst
	// SelectVoteSplit picks the pair whose ordering divides the whole
	// candidate pool most evenly (maximum disagreement entropy): the
	// answer eliminates close to half the sampled version space
	// regardless of which way the user votes, in the spirit of binary
	// search over behaviors.
	SelectVoteSplit
)

func (s QueryStrategy) String() string {
	switch s {
	case SelectMaxGap:
		return "max-gap"
	case SelectFirst:
		return "first-found"
	case SelectVoteSplit:
		return "vote-split"
	}
	return "QueryStrategy(?)"
}

// DistinguishOptions tune the distinguishing-query search.
type DistinguishOptions struct {
	// Candidates is the number of diverse consistent candidates to pit
	// against each other.
	Candidates int
	// PairSamples is the number of scenario pairs sampled per candidate
	// pair.
	PairSamples int
	// Gamma is the behavioral resolution: a disagreement only counts
	// when both candidates' score differences exceed Gamma in opposite
	// directions. This is the δ of the solver's δ-decision: once no
	// disagreement above Gamma exists, the objective is pinned down to
	// that resolution and the synthesis has converged.
	Gamma float64
	// MaximizeGap selects the most decisive disagreement found instead
	// of the first one. Deprecated shim: it maps to Strategy when
	// Strategy is unset — MaximizeGap=true means SelectMaxGap (also the
	// zero default), false means SelectFirst.
	MaximizeGap bool
	// Strategy selects among the disagreements found; see QueryStrategy.
	Strategy QueryStrategy
}

// DefaultDistinguishOptions returns the tuning used by the synthesizer.
func DefaultDistinguishOptions() DistinguishOptions {
	return DistinguishOptions{
		Candidates:  8,
		PairSamples: 600,
		Gamma:       0.5,
		MaximizeGap: true,
		Strategy:    SelectMaxGap,
	}
}

// effectiveStrategy resolves the Strategy/MaximizeGap pair.
func (d DistinguishOptions) effectiveStrategy() QueryStrategy {
	if d.Strategy != SelectMaxGap {
		return d.Strategy
	}
	if !d.MaximizeGap {
		return SelectFirst
	}
	return SelectMaxGap
}

// FindDistinguishing searches for a distinguishing witness.
//
// Verdicts:
//   - StatusSat: witness found (returned).
//   - StatusUnsat: no pair of consistent candidates disagrees above the
//     Gamma resolution — the synthesis has converged. A representative
//     consistent candidate can then be obtained with FindCandidate.
//   - StatusUnknown: no consistent candidate could be found at all
//     (over-constrained problem, e.g. inconsistent oracle input).
//
// Deprecated: this wrapper cannot be canceled. Use
// Compile(p, opts.Stats).FindDistinguishing(ctx, opts, dopts, rng).
func FindDistinguishing(p Problem, opts Options, dopts DistinguishOptions, rng *rand.Rand) (*Distinguishing, Status) {
	w, st, _ := Compile(p, opts.Stats).FindDistinguishing(context.Background(), opts, dopts, rng)
	return w, st
}

// FindDistinguishingMany returns up to k distinguishing witnesses with
// mutually distinct scenario pairs — used when the synthesizer asks the
// user to rank several pairs per iteration (paper Figure 4).
//
// Deprecated: this wrapper cannot be canceled. Use
// Compile(p, opts.Stats).FindDistinguishingMany(ctx, k, opts, dopts, rng).
func FindDistinguishingMany(p Problem, k int, opts Options, dopts DistinguishOptions, rng *rand.Rand) ([]*Distinguishing, Status) {
	wits, st, _ := Compile(p, opts.Stats).FindDistinguishingMany(context.Background(), k, opts, dopts, rng)
	return wits, st
}

// FindDistinguishing is the System-level single-witness variant.
//
// Deprecated: this wrapper cannot be canceled. Use
// NewSearch(s).FindDistinguishing(ctx, opts, dopts, rng).
func (s *System) FindDistinguishing(opts Options, dopts DistinguishOptions, rng *rand.Rand) (*Distinguishing, Status) {
	w, st, _ := NewSearch(s).FindDistinguishing(context.Background(), opts, dopts, rng)
	return w, st
}

// FindDistinguishingMany is the System-level search; see the package
// function of the same name.
//
// Deprecated: this wrapper cannot be canceled. Use
// NewSearch(s).FindDistinguishingMany(ctx, k, opts, dopts, rng).
func (s *System) FindDistinguishingMany(k int, opts Options, dopts DistinguishOptions, rng *rand.Rand) ([]*Distinguishing, Status) {
	wits, st, _ := NewSearch(s).FindDistinguishingMany(context.Background(), k, opts, dopts, rng)
	return wits, st
}

func (s *System) findDistinguishingMany(ctx context.Context, k int, opts Options, dopts DistinguishOptions, rng *rand.Rand) ([]*Distinguishing, Status, error) {
	if k < 1 {
		k = 1
	}
	cands, err := s.findDiverse(ctx, dopts.Candidates, opts, rng)
	if err != nil {
		return nil, StatusUnknown, err
	}
	if len(cands) == 0 {
		return nil, StatusUnknown, nil
	}
	if len(cands) == 1 {
		return nil, StatusUnsat, nil
	}

	space := s.sk.Space()
	var found []*Distinguishing

	// Pre-draw the scenario pair pool once; all candidate pairs are
	// tested against the same pool so that disagreements are comparable.
	x1s := space.RandomN(rng, dopts.PairSamples)
	x2s := space.RandomN(rng, dopts.PairSamples)

	// Score matrix: scores[c][s] = f_c(x1s[s]) - f_c(x2s[s]). The pool
	// is fresh random scenarios every call, so specializing them would
	// churn the sketch cache for single-use programs; this loop
	// deliberately stays on the sketch's shared compiled body.
	scores := make([][]float64, len(cands))
	for ci, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, StatusUnknown, err
		}
		row := make([]float64, dopts.PairSamples)
		for si := 0; si < dopts.PairSamples; si++ {
			row[si] = s.sk.Eval(x1s[si], c) - s.sk.Eval(x2s[si], c)
		}
		scores[ci] = row
	}

	strategy := dopts.effectiveStrategy()
	if strategy == SelectVoteSplit {
		found = voteSplitWitnesses(cands, scores, x1s, x2s, dopts)
	} else {
		for ai := 0; ai < len(cands); ai++ {
			for bi := ai + 1; bi < len(cands); bi++ {
				var best *Distinguishing
				for si := 0; si < dopts.PairSamples; si++ {
					da, db := scores[ai][si], scores[bi][si]
					var w *Distinguishing
					switch {
					case da > dopts.Gamma && db < -dopts.Gamma:
						w = &Distinguishing{
							A: cands[ai], B: cands[bi],
							X1: x1s[si], X2: x2s[si],
							Gap: math.Min(da, -db),
						}
					case db > dopts.Gamma && da < -dopts.Gamma:
						// Same disagreement with roles swapped.
						w = &Distinguishing{
							A: cands[bi], B: cands[ai],
							X1: x1s[si], X2: x2s[si],
							Gap: math.Min(db, -da),
						}
					default:
						continue
					}
					if strategy == SelectFirst {
						best = w
						break
					}
					if best == nil || w.Gap > best.Gap {
						best = w
					}
				}
				if best != nil {
					found = append(found, best)
				}
			}
		}
		sortByGap(found)
	}
	if len(found) == 0 {
		return nil, StatusUnsat, nil
	}

	// Greedily keep witnesses whose scenario pairs are distinct from
	// already-kept ones, so a multi-pair query gives the user genuinely
	// different comparisons.
	var out []*Distinguishing
	for _, w := range found {
		if len(out) == k {
			break
		}
		fresh := true
		for _, kept := range out {
			if samePair(w, kept, space) {
				fresh = false
				break
			}
		}
		if fresh {
			out = append(out, w)
		}
	}
	return out, StatusSat, nil
}

// voteSplitWitnesses ranks scenario pairs by how evenly the candidate
// pool splits over their ordering and returns one witness per usable
// pair, best split first. The witness uses the most decided candidate
// on each side of the split.
func voteSplitWitnesses(cands [][]float64, scores [][]float64, x1s, x2s []scenario.Scenario, dopts DistinguishOptions) []*Distinguishing {
	type scored struct {
		w     *Distinguishing
		split int // min(#prefer-X1, #prefer-X2): higher is more even
	}
	var all []scored
	for si := 0; si < dopts.PairSamples; si++ {
		bestA, bestB := -1, -1
		nA, nB := 0, 0
		for ci := range cands {
			s := scores[ci][si]
			switch {
			case s > dopts.Gamma:
				nA++
				if bestA < 0 || s > scores[bestA][si] {
					bestA = ci
				}
			case s < -dopts.Gamma:
				nB++
				if bestB < 0 || s < scores[bestB][si] {
					bestB = ci
				}
			}
		}
		if nA == 0 || nB == 0 {
			continue
		}
		split := nA
		if nB < split {
			split = nB
		}
		all = append(all, scored{
			w: &Distinguishing{
				A: cands[bestA], B: cands[bestB],
				X1: x1s[si], X2: x2s[si],
				Gap: math.Min(scores[bestA][si], -scores[bestB][si]),
			},
			split: split,
		})
	}
	// Sort by split desc, then gap desc (insertion sort; small lists in
	// practice after the split filter, and stability keeps pair-sample
	// order as the final tiebreak for determinism).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].split > all[j-1].split ||
			all[j].split == all[j-1].split && all[j].w.Gap > all[j-1].w.Gap); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([]*Distinguishing, len(all))
	for i, s := range all {
		out[i] = s.w
	}
	return out
}

func sortByGap(ws []*Distinguishing) {
	// Insertion sort: the slice is small (≤ number of candidate pairs).
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Gap > ws[j-1].Gap; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// samePair reports whether two witnesses use (nearly) the same scenario
// pair in either orientation. The tolerance is relative to the space's
// metric ranges.
func samePair(a, b *Distinguishing, space *scenario.Space) bool {
	tol := 0.0
	for _, r := range space.Ranges() {
		tol += r.Width()
	}
	tol *= 1e-3 / float64(space.Dim())
	close := func(x, y scenario.Scenario) bool {
		return x.AlmostEqual(y, tol)
	}
	return close(a.X1, b.X1) && close(a.X2, b.X2) ||
		close(a.X1, b.X2) && close(a.X2, b.X1)
}
