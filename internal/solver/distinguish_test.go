package solver

import (
	"math/rand"
	"testing"
)

func TestQueryStrategyString(t *testing.T) {
	if SelectMaxGap.String() != "max-gap" || SelectFirst.String() != "first-found" ||
		SelectVoteSplit.String() != "vote-split" {
		t.Error("QueryStrategy strings wrong")
	}
	if QueryStrategy(9).String() == "" {
		t.Error("unknown strategy empty")
	}
}

func TestEffectiveStrategyShim(t *testing.T) {
	cases := []struct {
		opts DistinguishOptions
		want QueryStrategy
	}{
		{DistinguishOptions{MaximizeGap: true}, SelectMaxGap},
		{DistinguishOptions{MaximizeGap: false}, SelectFirst},
		{DistinguishOptions{Strategy: SelectVoteSplit}, SelectVoteSplit},
		{DistinguishOptions{Strategy: SelectFirst, MaximizeGap: true}, SelectFirst},
		{DefaultDistinguishOptions(), SelectMaxGap},
	}
	for i, c := range cases {
		if got := c.opts.effectiveStrategy(); got != c.want {
			t.Errorf("case %d: effectiveStrategy = %v, want %v", i, got, c.want)
		}
	}
}

func TestAllStrategiesFindValidWitnesses(t *testing.T) {
	p, _ := swanProblem(t, 3, 61)
	for _, strategy := range []QueryStrategy{SelectMaxGap, SelectFirst, SelectVoteSplit} {
		dopts := DefaultDistinguishOptions()
		dopts.Strategy = strategy
		if strategy == SelectFirst {
			dopts.MaximizeGap = false
		}
		w, st := FindDistinguishing(p, DefaultOptions(), dopts, rand.New(rand.NewSource(62)))
		if st != StatusSat {
			t.Fatalf("%v: status = %v", strategy, st)
		}
		validateWitness(t, p, w, dopts.Gamma)
	}
}

func TestVoteSplitPrefersEvenSplits(t *testing.T) {
	p, _ := swanProblem(t, 3, 63)
	dopts := DefaultDistinguishOptions()
	dopts.Strategy = SelectVoteSplit
	dopts.Candidates = 8
	rng := rand.New(rand.NewSource(64))
	ws, st := FindDistinguishingMany(p, 3, DefaultOptions(), dopts, rng)
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	for _, w := range ws {
		validateWitness(t, p, w, dopts.Gamma)
	}
}

func TestVoteSplitConvergesInSynthesisShape(t *testing.T) {
	// Vote-split must also reach UNSAT on a behaviorally pinned sketch.
	p, _ := swanProblem(t, 0, 65)
	dopts := DefaultDistinguishOptions()
	dopts.Strategy = SelectVoteSplit
	// Unconstrained SWAN sketch: plenty of disagreement exists.
	if _, st := FindDistinguishing(p, DefaultOptions(), dopts, rand.New(rand.NewSource(66))); st != StatusSat {
		t.Fatalf("unconstrained status = %v", st)
	}
}
