package solver

import (
	"context"
	"math/rand"
	"testing"
)

func TestParallelFindCandidateFindsSolutions(t *testing.T) {
	p, _ := swanProblem(t, 25, 41)
	opts := DefaultOptions()
	opts.Workers = 4
	h, st := FindCandidate(p, opts, rand.New(rand.NewSource(42)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if !Satisfies(p, h) {
		t.Error("parallel candidate violates constraints")
	}
}

func TestParallelDeterministicPerSeed(t *testing.T) {
	p, _ := swanProblem(t, 15, 43)
	opts := DefaultOptions()
	opts.Workers = 4
	run := func() []float64 {
		h, st := FindCandidate(p, opts, rand.New(rand.NewSource(7)))
		if st != StatusSat {
			t.Fatalf("status = %v", st)
		}
		return h
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel search not deterministic: %v vs %v", a, b)
		}
	}
}

func TestParallelFindDiverse(t *testing.T) {
	p, _ := swanProblem(t, 5, 47)
	opts := DefaultOptions()
	opts.Workers = 4
	cands := FindDiverse(p, 6, opts, rand.New(rand.NewSource(48)))
	if len(cands) < 2 {
		t.Fatalf("parallel FindDiverse found %d candidates", len(cands))
	}
	for _, c := range cands {
		if !Satisfies(p, c) {
			t.Error("parallel diverse candidate violates constraints")
		}
	}
}

func TestParallelDistinguishing(t *testing.T) {
	p, _ := swanProblem(t, 4, 49)
	opts := DefaultOptions()
	opts.Workers = 4
	w, st := FindDistinguishing(p, opts, DefaultDistinguishOptions(), rand.New(rand.NewSource(50)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	validateWitness(t, p, w, DefaultDistinguishOptions().Gamma)
}

func TestSplitBudget(t *testing.T) {
	opts := Options{Budget: Budget{Samples: 10, RepairRestarts: 5, Workers: 3}}
	jobs := splitBudget(opts, rand.New(rand.NewSource(1)))
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	samples, repairs := 0, 0
	for _, j := range jobs {
		samples += j.samples
		repairs += j.repairs
	}
	if samples != 10 || repairs != 5 {
		t.Errorf("budget split lost work: %d samples, %d repairs", samples, repairs)
	}
	// Distinct per-worker seeds.
	if jobs[0].seed == jobs[1].seed {
		t.Error("workers share seeds")
	}
	// More workers than work: clamped.
	opts = Options{Budget: Budget{Samples: 1, RepairRestarts: 0, Workers: 8}}
	jobs = splitBudget(opts, rand.New(rand.NewSource(2)))
	if len(jobs) != 1 {
		t.Errorf("jobs = %d, want clamp to 1", len(jobs))
	}
	// Zero budget: one no-op worker, no panic.
	opts = Options{Budget: Budget{Workers: 4}}
	jobs = splitBudget(opts, rand.New(rand.NewSource(3)))
	if len(jobs) != 1 {
		t.Errorf("zero-budget jobs = %d", len(jobs))
	}
}

func TestSplitBudgetClampsWorkersToBudget(t *testing.T) {
	// Workers beyond Samples+RepairRestarts are dropped so the worker
	// count never exceeds the total budget.
	opts := Options{Budget: Budget{Samples: 4, RepairRestarts: 3, Workers: 10}}
	jobs := splitBudget(opts, rand.New(rand.NewSource(9)))
	if len(jobs) != 7 {
		t.Fatalf("jobs = %d, want clamp to Samples+RepairRestarts = 7", len(jobs))
	}
	samples, repairs := 0, 0
	for _, j := range jobs {
		samples += j.samples
		repairs += j.repairs
	}
	if samples != 4 || repairs != 3 {
		t.Errorf("clamped split lost work: %d samples, %d repairs", samples, repairs)
	}
	// Remainders pile onto the lowest-indexed workers, so trailing
	// workers may legitimately hold an empty budget even after the
	// clamp; they exist only to keep seed derivation uniform. Document
	// the exact shape for this configuration.
	wantSamples := []int{1, 1, 1, 1, 0, 0, 0}
	wantRepairs := []int{1, 1, 1, 0, 0, 0, 0}
	for w, j := range jobs {
		if j.samples != wantSamples[w] || j.repairs != wantRepairs[w] {
			t.Errorf("worker %d budget = (%d samples, %d repairs), want (%d, %d)",
				w, j.samples, j.repairs, wantSamples[w], wantRepairs[w])
		}
	}
	// Exactly at the budget: no clamp.
	opts = Options{Budget: Budget{Samples: 4, RepairRestarts: 3, Workers: 7}}
	if jobs := splitBudget(opts, rand.New(rand.NewSource(10))); len(jobs) != 7 {
		t.Errorf("jobs = %d, want 7 (no clamp at exact budget)", len(jobs))
	}
	// Negative/zero Workers floors at one.
	opts = Options{Budget: Budget{Samples: 4, RepairRestarts: 3, Workers: -2}}
	if jobs := splitBudget(opts, rand.New(rand.NewSource(11))); len(jobs) != 1 {
		t.Errorf("jobs = %d, want 1 for Workers <= 0", len(jobs))
	}
}

func TestParallelWitnessesRespectsMaxPerWorker(t *testing.T) {
	// Unconstrained problem: every sample is a witness, so each worker
	// stops at maxPerWorker.
	p, _ := swanProblem(t, 0, 51)
	opts := DefaultOptions()
	opts.Workers = 4
	ws, err := compileSystem(p, nil).parallelWitnesses(context.Background(), opts, rand.New(rand.NewSource(52)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 || len(ws) > 4*3 {
		t.Errorf("witnesses = %d, want in (0, 12]", len(ws))
	}
}
