package solver

import (
	"math/rand"
	"testing"
)

func TestParallelFindCandidateFindsSolutions(t *testing.T) {
	p, _ := swanProblem(t, 25, 41)
	opts := DefaultOptions()
	opts.Workers = 4
	h, st := FindCandidate(p, opts, rand.New(rand.NewSource(42)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	if !Satisfies(p, h) {
		t.Error("parallel candidate violates constraints")
	}
}

func TestParallelDeterministicPerSeed(t *testing.T) {
	p, _ := swanProblem(t, 15, 43)
	opts := DefaultOptions()
	opts.Workers = 4
	run := func() []float64 {
		h, st := FindCandidate(p, opts, rand.New(rand.NewSource(7)))
		if st != StatusSat {
			t.Fatalf("status = %v", st)
		}
		return h
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel search not deterministic: %v vs %v", a, b)
		}
	}
}

func TestParallelFindDiverse(t *testing.T) {
	p, _ := swanProblem(t, 5, 47)
	opts := DefaultOptions()
	opts.Workers = 4
	cands := FindDiverse(p, 6, opts, rand.New(rand.NewSource(48)))
	if len(cands) < 2 {
		t.Fatalf("parallel FindDiverse found %d candidates", len(cands))
	}
	for _, c := range cands {
		if !Satisfies(p, c) {
			t.Error("parallel diverse candidate violates constraints")
		}
	}
}

func TestParallelDistinguishing(t *testing.T) {
	p, _ := swanProblem(t, 4, 49)
	opts := DefaultOptions()
	opts.Workers = 4
	w, st := FindDistinguishing(p, opts, DefaultDistinguishOptions(), rand.New(rand.NewSource(50)))
	if st != StatusSat {
		t.Fatalf("status = %v", st)
	}
	validateWitness(t, p, w, DefaultDistinguishOptions().Gamma)
}

func TestSplitBudget(t *testing.T) {
	opts := Options{Samples: 10, RepairRestarts: 5, Workers: 3}
	jobs := splitBudget(opts, rand.New(rand.NewSource(1)))
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	samples, repairs := 0, 0
	for _, j := range jobs {
		samples += j.samples
		repairs += j.repairs
	}
	if samples != 10 || repairs != 5 {
		t.Errorf("budget split lost work: %d samples, %d repairs", samples, repairs)
	}
	// Distinct per-worker seeds.
	if jobs[0].seed == jobs[1].seed {
		t.Error("workers share seeds")
	}
	// More workers than work: clamped.
	opts = Options{Samples: 1, RepairRestarts: 0, Workers: 8}
	jobs = splitBudget(opts, rand.New(rand.NewSource(2)))
	if len(jobs) != 1 {
		t.Errorf("jobs = %d, want clamp to 1", len(jobs))
	}
	// Zero budget: one no-op worker, no panic.
	opts = Options{Workers: 4}
	jobs = splitBudget(opts, rand.New(rand.NewSource(3)))
	if len(jobs) != 1 {
		t.Errorf("zero-budget jobs = %d", len(jobs))
	}
}

func TestParallelWitnessesRespectsMaxPerWorker(t *testing.T) {
	// Unconstrained problem: every sample is a witness, so each worker
	// stops at maxPerWorker.
	p, _ := swanProblem(t, 0, 51)
	opts := DefaultOptions()
	opts.Workers = 4
	ws := parallelWitnesses(p, opts, rand.New(rand.NewSource(52)), 3)
	if len(ws) == 0 || len(ws) > 4*3 {
		t.Errorf("witnesses = %d, want in (0, 12]", len(ws))
	}
}
