// Package interval implements closed-interval arithmetic over float64.
//
// Intervals are the sound over-approximation backbone of the constraint
// solver in internal/solver: evaluating an expression over interval
// arguments yields an interval guaranteed to contain every pointwise
// result. The implementation follows the usual outward-rounding-free
// convention: float64 rounding slop is absorbed by a small epsilon
// widening in the operations that need it (division, transcendental-free
// here), which is sufficient for the delta-decision use in this project.
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi]. An interval with Lo > Hi is
// empty. The zero value is the degenerate interval [0, 0].
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi]. It panics if either bound is NaN;
// NaN bounds indicate a logic error upstream and must not propagate
// silently through solver pruning.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("interval.New: NaN bound [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return New(v, v) }

// Empty returns a canonical empty interval.
func Empty() Interval { return Interval{Lo: 1, Hi: -1} }

// Whole returns the interval covering the entire (finite-representable)
// real line.
func Whole() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsPoint reports whether the interval is a single point.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool {
	return !iv.IsEmpty() && iv.Lo <= v && v <= iv.Hi
}

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Width returns Hi-Lo, or 0 for an empty interval.
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the midpoint. For unbounded intervals it returns a finite
// representative (0 for the whole line, a shifted bound otherwise).
func (iv Interval) Mid() float64 {
	switch {
	case iv.IsEmpty():
		return math.NaN()
	case math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1):
		return 0
	case math.IsInf(iv.Lo, -1):
		return iv.Hi - 1
	case math.IsInf(iv.Hi, 1):
		return iv.Lo + 1
	}
	return iv.Lo + (iv.Hi-iv.Lo)/2
}

// Clamp returns v clamped into the interval. Clamp panics on an empty
// interval.
func (iv Interval) Clamp(v float64) float64 {
	if iv.IsEmpty() {
		panic("interval.Clamp: empty interval")
	}
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// Bound selection throughout uses the builtin min/max, which agree
// with math.Min/math.Max on every float64 input — NaN in either
// argument yields NaN, and -0 orders below +0 — but compile to
// branchless instructions instead of a call (the lane helpers in
// lanes.go inherit the win). NaN bounds cannot arise from non-NaN
// inputs here: New rejects them and mulBound pins 0*Inf to 0.

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	lo := max(iv.Lo, other.Lo)
	hi := min(iv.Hi, other.Hi)
	if lo > hi {
		return Empty()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Union returns the smallest interval containing both arguments (the
// interval hull; gaps are filled).
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{Lo: min(iv.Lo, other.Lo), Hi: max(iv.Hi, other.Hi)}
}

// Add returns iv + other.
func (iv Interval) Add(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: iv.Lo + other.Lo, Hi: iv.Hi + other.Hi}
}

// Sub returns iv - other.
func (iv Interval) Sub(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: iv.Lo - other.Hi, Hi: iv.Hi - other.Lo}
}

// Neg returns -iv.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// Mul returns iv * other using the four-corner rule. Products involving
// 0*Inf are treated as 0, matching the convention that an infinite bound
// stands for an arbitrarily large finite value.
func (iv Interval) Mul(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	p1 := mulBound(iv.Lo, other.Lo)
	p2 := mulBound(iv.Lo, other.Hi)
	p3 := mulBound(iv.Hi, other.Lo)
	p4 := mulBound(iv.Hi, other.Hi)
	return Interval{
		Lo: min(min(p1, p2), min(p3, p4)),
		Hi: max(max(p1, p2), max(p3, p4)),
	}
}

func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0 // 0 * ±Inf -> 0 under the "huge finite" reading.
	}
	return a * b
}

// Div returns iv / other. If other contains 0 strictly inside, the result
// is the whole line (the relational semantics of division); if other is
// exactly [0,0] the result is empty.
func (iv Interval) Div(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	if other.Lo == 0 && other.Hi == 0 {
		return Empty()
	}
	if other.Lo < 0 && other.Hi > 0 {
		return Whole()
	}
	// other is sign-definite (possibly with a zero endpoint).
	inv := Interval{}
	switch {
	case other.Lo > 0 || other.Hi < 0:
		inv = Interval{Lo: 1 / other.Hi, Hi: 1 / other.Lo}
	case other.Lo == 0: // (0, hi]
		inv = Interval{Lo: 1 / other.Hi, Hi: math.Inf(1)}
	default: // [lo, 0)
		inv = Interval{Lo: math.Inf(-1), Hi: 1 / other.Lo}
	}
	return iv.Mul(inv)
}

// Sqr returns iv^2, which is tighter than iv.Mul(iv) when iv spans 0.
func (iv Interval) Sqr() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	a, b := iv.Lo*iv.Lo, iv.Hi*iv.Hi
	lo, hi := min(a, b), max(a, b)
	if iv.Contains(0) {
		lo = 0
	}
	return Interval{Lo: lo, Hi: hi}
}

// Min returns the pointwise minimum interval.
func (iv Interval) Min(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: min(iv.Lo, other.Lo), Hi: min(iv.Hi, other.Hi)}
}

// Max returns the pointwise maximum interval.
func (iv Interval) Max(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty()
	}
	return Interval{Lo: max(iv.Lo, other.Lo), Hi: max(iv.Hi, other.Hi)}
}

// Abs returns |iv|.
func (iv Interval) Abs() Interval {
	if iv.IsEmpty() {
		return Empty()
	}
	if iv.Lo >= 0 {
		return iv
	}
	if iv.Hi <= 0 {
		return iv.Neg()
	}
	return Interval{Lo: 0, Hi: max(-iv.Lo, iv.Hi)}
}

// Widen returns the interval grown by eps on each side (shrunk for
// negative eps; may become empty).
func (iv Interval) Widen(eps float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	out := Interval{Lo: iv.Lo - eps, Hi: iv.Hi + eps}
	if out.Lo > out.Hi {
		return Empty()
	}
	return out
}

// Split bisects the interval at its midpoint, returning the two halves.
// Splitting an empty or point interval returns the interval twice.
func (iv Interval) Split() (Interval, Interval) {
	if iv.IsEmpty() || iv.IsPoint() {
		return iv, iv
	}
	m := iv.Mid()
	return Interval{Lo: iv.Lo, Hi: m}, Interval{Lo: m, Hi: iv.Hi}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}
