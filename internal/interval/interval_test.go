package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with NaN bound did not panic")
		}
	}()
	New(math.NaN(), 1)
}

func TestEmptyBasics(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() is not empty")
	}
	if e.Contains(0) {
		t.Error("empty interval contains 0")
	}
	if e.Width() != 0 {
		t.Errorf("empty width = %v, want 0", e.Width())
	}
	if !math.IsNaN(e.Mid()) {
		t.Errorf("empty Mid = %v, want NaN", e.Mid())
	}
	if e.String() != "∅" {
		t.Errorf("empty String = %q", e.String())
	}
}

func TestPointInterval(t *testing.T) {
	p := Point(3.5)
	if !p.IsPoint() {
		t.Fatal("Point not IsPoint")
	}
	if !p.Contains(3.5) || p.Contains(3.6) {
		t.Error("Point containment wrong")
	}
	if p.Mid() != 3.5 {
		t.Errorf("Point Mid = %v", p.Mid())
	}
}

func TestContainsInterval(t *testing.T) {
	outer := New(0, 10)
	cases := []struct {
		in   Interval
		want bool
	}{
		{New(2, 5), true},
		{New(0, 10), true},
		{New(-1, 5), false},
		{New(5, 11), false},
		{Empty(), true},
	}
	for _, c := range cases {
		if got := outer.ContainsInterval(c.in); got != c.want {
			t.Errorf("ContainsInterval(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if Empty().ContainsInterval(New(1, 2)) {
		t.Error("empty contains non-empty")
	}
}

func TestIntersect(t *testing.T) {
	a := New(0, 5)
	b := New(3, 8)
	got := a.Intersect(b)
	if got.Lo != 3 || got.Hi != 5 {
		t.Errorf("Intersect = %v, want [3,5]", got)
	}
	if !New(0, 1).Intersect(New(2, 3)).IsEmpty() {
		t.Error("disjoint intersect not empty")
	}
	// Touching intervals intersect in a point.
	p := New(0, 2).Intersect(New(2, 4))
	if p.IsEmpty() || !p.IsPoint() || p.Lo != 2 {
		t.Errorf("touching intersect = %v, want [2,2]", p)
	}
}

func TestUnionHull(t *testing.T) {
	got := New(0, 1).Union(New(5, 6))
	if got.Lo != 0 || got.Hi != 6 {
		t.Errorf("Union = %v, want [0,6]", got)
	}
	if u := Empty().Union(New(1, 2)); u.Lo != 1 || u.Hi != 2 {
		t.Errorf("Empty.Union = %v", u)
	}
	if u := New(1, 2).Union(Empty()); u.Lo != 1 || u.Hi != 2 {
		t.Errorf("Union(Empty) = %v", u)
	}
}

func TestArithmeticKnownValues(t *testing.T) {
	a := New(1, 2)
	b := New(-3, 4)
	if got := a.Add(b); got != New(-2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got != New(-2, -1) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Mul(b); got != New(-6, 8) {
		t.Errorf("Mul = %v", got)
	}
	if got := b.Sqr(); got != New(0, 16) {
		t.Errorf("Sqr = %v", got)
	}
}

func TestDiv(t *testing.T) {
	a := New(1, 2)
	if got := a.Div(New(2, 4)); got != New(0.25, 1) {
		t.Errorf("Div = %v", got)
	}
	// Divisor spanning zero strictly -> whole line.
	w := a.Div(New(-1, 1))
	if !math.IsInf(w.Lo, -1) || !math.IsInf(w.Hi, 1) {
		t.Errorf("Div spanning zero = %v, want whole", w)
	}
	// Division by exactly zero -> empty.
	if !a.Div(Point(0)).IsEmpty() {
		t.Error("Div by [0,0] not empty")
	}
	// Divisor with zero endpoint: [0, 2] -> [1/2, +inf) scaled.
	g := New(1, 1).Div(New(0, 2))
	if g.Lo != 0.5 || !math.IsInf(g.Hi, 1) {
		t.Errorf("Div by [0,2] = %v", g)
	}
}

func TestMinMaxAbs(t *testing.T) {
	a := New(1, 5)
	b := New(3, 4)
	if got := a.Min(b); got != New(1, 4) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(3, 5) {
		t.Errorf("Max = %v", got)
	}
	if got := New(-3, 2).Abs(); got != New(0, 3) {
		t.Errorf("Abs = %v", got)
	}
	if got := New(-3, -1).Abs(); got != New(1, 3) {
		t.Errorf("Abs neg = %v", got)
	}
	if got := New(1, 3).Abs(); got != New(1, 3) {
		t.Errorf("Abs pos = %v", got)
	}
}

func TestWiden(t *testing.T) {
	if got := New(1, 2).Widen(0.5); got != New(0.5, 2.5) {
		t.Errorf("Widen = %v", got)
	}
	if !New(1, 2).Widen(-1).IsEmpty() {
		t.Error("over-shrunk interval not empty")
	}
	if got := Empty().Widen(10); !got.IsEmpty() {
		t.Error("widened empty not empty")
	}
}

func TestSplit(t *testing.T) {
	l, r := New(0, 4).Split()
	if l != New(0, 2) || r != New(2, 4) {
		t.Errorf("Split = %v, %v", l, r)
	}
	pl, pr := Point(1).Split()
	if pl != Point(1) || pr != Point(1) {
		t.Errorf("point Split = %v, %v", pl, pr)
	}
}

func TestMidUnbounded(t *testing.T) {
	if m := Whole().Mid(); m != 0 {
		t.Errorf("Whole Mid = %v", m)
	}
	if m := New(math.Inf(-1), 5).Mid(); m != 4 {
		t.Errorf("(-inf,5] Mid = %v", m)
	}
	if m := New(5, math.Inf(1)).Mid(); m != 6 {
		t.Errorf("[5,inf) Mid = %v", m)
	}
}

func TestClamp(t *testing.T) {
	iv := New(0, 10)
	for _, c := range []struct{ in, want float64 }{{-5, 0}, {5, 5}, {15, 10}} {
		if got := iv.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp on empty did not panic")
		}
	}()
	Empty().Clamp(1)
}

// randomPair draws a random interval and a random point inside it.
func randomPair(rng *rand.Rand) (Interval, float64) {
	a := rng.NormFloat64() * 10
	b := rng.NormFloat64() * 10
	if a > b {
		a, b = b, a
	}
	iv := New(a, b)
	p := a + rng.Float64()*(b-a)
	return iv, p
}

// Property: interval operations are inclusion-sound, i.e. for points
// x ∈ A, y ∈ B, the pointwise result lies in op(A, B).
func TestPropInclusionSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type binop struct {
		name string
		ivOp func(Interval, Interval) Interval
		ptOp func(float64, float64) float64
	}
	ops := []binop{
		{"Add", Interval.Add, func(x, y float64) float64 { return x + y }},
		{"Sub", Interval.Sub, func(x, y float64) float64 { return x - y }},
		{"Mul", Interval.Mul, func(x, y float64) float64 { return x * y }},
		{"Min", Interval.Min, math.Min},
		{"Max", Interval.Max, math.Max},
	}
	const slack = 1e-9
	for i := 0; i < 3000; i++ {
		a, x := randomPair(rng)
		b, y := randomPair(rng)
		for _, op := range ops {
			res := op.ivOp(a, b)
			v := op.ptOp(x, y)
			if !res.Widen(slack + math.Abs(v)*1e-12).Contains(v) {
				t.Fatalf("%s not inclusion-sound: %v op %v = %v, point %v op %v = %v",
					op.name, a, b, res, x, y, v)
			}
		}
	}
}

func TestPropDivisionSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		a, x := randomPair(rng)
		b, y := randomPair(rng)
		if y == 0 {
			continue
		}
		res := a.Div(b)
		v := x / y
		if !res.Widen(1e-9 + math.Abs(v)*1e-9).Contains(v) {
			t.Fatalf("Div not sound: %v / %v = %v, point %v / %v = %v", a, b, res, x, y, v)
		}
	}
}

func TestPropSqrTighterThanMul(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		a, x := randomPair(rng)
		sq := a.Sqr()
		if !sq.Widen(1e-9 + x*x*1e-12).Contains(x * x) {
			t.Fatalf("Sqr not sound: %v^2 = %v misses %v", a, sq, x*x)
		}
		if !a.Mul(a).ContainsInterval(sq) {
			t.Fatalf("Sqr(%v)=%v wider than Mul=%v", a, sq, a.Mul(a))
		}
	}
}

func TestPropIntersectCommutes(t *testing.T) {
	f := func(alo, ahi, blo, bhi float64) bool {
		if math.IsNaN(alo) || math.IsNaN(ahi) || math.IsNaN(blo) || math.IsNaN(bhi) {
			return true
		}
		a, b := Interval{alo, ahi}, Interval{blo, bhi}
		x, y := a.Intersect(b), b.Intersect(a)
		return x.IsEmpty() == y.IsEmpty() && (x.IsEmpty() || x == y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(alo, ahi, blo, bhi float64) bool {
		if math.IsNaN(alo) || math.IsNaN(ahi) || math.IsNaN(blo) || math.IsNaN(bhi) {
			return true
		}
		a, b := Interval{alo, ahi}, Interval{blo, bhi}
		u := a.Union(b)
		return u.ContainsInterval(a) && u.ContainsInterval(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropSplitCoversAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 2000; i++ {
		a, x := randomPair(rng)
		l, r := a.Split()
		if !l.Contains(x) && !r.Contains(x) {
			t.Fatalf("Split of %v loses point %v", a, x)
		}
		if !a.IsPoint() && (l.Width() >= a.Width() || r.Width() >= a.Width()) {
			t.Fatalf("Split of %v did not shrink: %v %v", a, l, r)
		}
		if got := l.Union(r); got != a {
			t.Fatalf("Split of %v does not cover: union %v", a, got)
		}
	}
}
