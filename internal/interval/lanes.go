package interval

// Structure-of-arrays lane helpers for batched interval evaluation.
//
// The batched tape interpreter in internal/expr keeps its stacks as
// parallel Lo/Hi float64 slices, one value per lane, so that a single
// instruction dispatch applies one interval operation across a whole
// batch of boxes. Each helper here applies the corresponding scalar
// Interval method elementwise over k lanes — by construction the lane
// semantics (empty propagation, the four-corner Mul rule, relational
// Div, NaN behavior) are exactly the scalar semantics, which is what
// keeps batched evaluation bit-identical to one-box-at-a-time
// evaluation.
//
// All helpers permit the destination to alias the first operand (the
// interpreter evaluates in place on its stack rows): lane l is read in
// full before lane l is written. Every helper reslices its operands to
// exactly k lanes up front so the compiler can prove the paired index
// loops in bounds and drop the per-lane checks.

// AddLanes stores a+b into dst for each of the first k lanes.
func AddLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Add(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// SubLanes stores a-b into dst for each of the first k lanes.
func SubLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Sub(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// MulLanes stores a*b (four-corner rule) into dst for each of the
// first k lanes.
func MulLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Mul(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// DivLanes stores a/b (relational semantics) into dst for each of the
// first k lanes.
func DivLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Div(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// MinLanes stores the pointwise minimum into dst for each of the first
// k lanes.
func MinLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Min(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// MaxLanes stores the pointwise maximum into dst for each of the first
// k lanes.
func MaxLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Max(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// NegLanes stores -a into dst for each of the first k lanes.
func NegLanes(k int, dstLo, dstHi, aLo, aHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Neg()
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// AbsLanes stores |a| into dst for each of the first k lanes.
func AbsLanes(k int, dstLo, dstHi, aLo, aHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Abs()
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}

// UnionLanes stores the interval hull of a and b into dst for each of
// the first k lanes.
func UnionLanes(k int, dstLo, dstHi, aLo, aHi, bLo, bHi []float64) {
	dstLo, dstHi = dstLo[:k], dstHi[:k]
	aLo, aHi = aLo[:k], aHi[:k]
	bLo, bHi = bLo[:k], bHi[:k]
	for l := range aLo {
		r := Interval{Lo: aLo[l], Hi: aHi[l]}.Union(Interval{Lo: bLo[l], Hi: bHi[l]})
		dstLo[l], dstHi[l] = r.Lo, r.Hi
	}
}
