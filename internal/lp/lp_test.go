package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := Problem{NumVars: 2, Objective: []float64{3, 2}}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]) > 1e-6 {
		t.Errorf("X = %v", sol.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. x <= 2, y <= 3 -> (2,3), obj 5.
	p := Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 0}, LE, 2)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Errorf("objective = %v", sol.Objective)
	}
}

func TestGEAndEQConstraints(t *testing.T) {
	// max x + 2y s.t. x + y = 10, x >= 3, y <= 5 -> x=5, y=5, obj 15.
	p := Problem{NumVars: 2, Objective: []float64{1, 2}}
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, GE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-15) > 1e-6 {
		t.Errorf("objective = %v, X = %v", sol.Objective, sol.X)
	}
	if math.Abs(sol.X[0]+sol.X[1]-10) > 1e-6 {
		t.Errorf("equality violated: %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 1.
	p := Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, GE, 1)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 is x >= 2; max -x s.t. x >= 2, x <= 5 -> x=2.
	p := Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-6 {
		t.Errorf("X = %v, want 2", sol.X)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic degenerate LP (Beale-like); Bland's rule must terminate.
	p := Problem{NumVars: 4, Objective: []float64{0.75, -150, 0.02, -6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-0.05) > 1e-6 {
		t.Errorf("objective = %v, want 0.05", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := Problem{NumVars: 2, Objective: []float64{0, 0}}
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]+sol.X[1]-3) > 1e-6 || sol.X[0] > 2+1e-9 {
		t.Errorf("X = %v", sol.X)
	}
}

func TestRedundantConstraints(t *testing.T) {
	p := Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 1}, LE, 4) // duplicate
	p.AddConstraint([]float64{2, 2}, EQ, 8) // forces the boundary
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Errorf("objective = %v", sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{NumVars: 0}); err == nil {
		t.Error("zero vars accepted")
	}
	if _, err := Solve(Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("objective arity mismatch accepted")
	}
	p := Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1, 2}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Error("constraint arity mismatch accepted")
	}
	p2 := Problem{NumVars: 1, Objective: []float64{1}}
	p2.AddConstraint([]float64{math.NaN()}, LE, 1)
	if _, err := Solve(p2); err == nil {
		t.Error("NaN coefficient accepted")
	}
	p3 := Problem{NumVars: 1, Objective: []float64{1}}
	p3.AddConstraint([]float64{1}, LE, math.Inf(1))
	if _, err := Solve(p3); err == nil {
		t.Error("infinite RHS accepted")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if Op(7).String() == "" || Status(7).String() == "" {
		t.Error("unknown strings empty")
	}
}

// bruteForce2D solves a 2-variable LP with LE constraints by vertex
// enumeration, for cross-checking the simplex.
func bruteForce2D(obj []float64, cons []Constraint) (float64, bool) {
	// Vertices arise from intersections of constraint boundaries (incl.
	// the axes x=0, y=0).
	lines := [][3]float64{{1, 0, 0}, {0, 1, 0}} // x=0, y=0
	for _, c := range cons {
		lines = append(lines, [3]float64{c.Coeffs[0], c.Coeffs[1], c.RHS})
	}
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, c := range cons {
			if c.Coeffs[0]*x+c.Coeffs[1]*y > c.RHS+1e-9 {
				return false
			}
		}
		return true
	}
	best := math.Inf(-1)
	found := false
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			a1, b1, c1 := lines[i][0], lines[i][1], lines[i][2]
			a2, b2, c2 := lines[j][0], lines[j][1], lines[j][2]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			if feasible(x, y) {
				found = true
				if v := obj[0]*x + obj[1]*y; v > best {
					best = v
				}
			}
		}
	}
	return best, found
}

// Property: simplex matches brute-force vertex enumeration on random
// bounded 2D LPs.
func TestPropMatchesBruteForce2D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		obj := []float64{rng.NormFloat64(), rng.NormFloat64()}
		var cons []Constraint
		// Bounding box keeps every instance bounded.
		cons = append(cons,
			Constraint{Coeffs: []float64{1, 0}, Op: LE, RHS: 1 + rng.Float64()*10},
			Constraint{Coeffs: []float64{0, 1}, Op: LE, RHS: 1 + rng.Float64()*10},
		)
		for k := rng.Intn(4); k > 0; k-- {
			cons = append(cons, Constraint{
				Coeffs: []float64{rng.NormFloat64(), rng.NormFloat64()},
				Op:     LE,
				RHS:    rng.Float64() * 5, // nonnegative keeps origin feasible
			})
		}
		p := Problem{NumVars: 2, Objective: obj, Constraints: cons}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForce2D(obj, cons)
		if !feasible {
			// Origin is always feasible here, so this can't happen.
			t.Fatal("brute force found no vertex")
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (brute force %v)", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v != brute force %v", trial, sol.Objective, want)
		}
	}
}

// Property: returned solutions always satisfy their constraints.
func TestPropSolutionsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		p := Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			bound := make([]float64, n)
			bound[i] = 1
			p.AddConstraint(bound, LE, 1+rng.Float64()*5)
		}
		for k := rng.Intn(5); k > 0; k-- {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			ops := []Op{LE, GE, EQ}
			op := ops[rng.Intn(2)] // LE or GE; EQ often infeasible randomly
			p.AddConstraint(row, op, rng.NormFloat64()*3)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		for i, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * sol.X[j]
			}
			ok := true
			switch c.Op {
			case LE:
				ok = lhs <= c.RHS+1e-6
			case GE:
				ok = lhs >= c.RHS-1e-6
			case EQ:
				ok = math.Abs(lhs-c.RHS) <= 1e-6
			}
			if !ok {
				t.Fatalf("trial %d: constraint %d violated: %v %v %v (X=%v)",
					trial, i, lhs, c.Op, c.RHS, sol.X)
			}
		}
		for j, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: negative variable x%d = %v", trial, j, v)
			}
		}
	}
}
