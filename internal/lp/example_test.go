package lp_test

import (
	"fmt"

	"compsynth/internal/lp"
)

func ExampleSolve() {
	// maximize 3x + 2y subject to x+y ≤ 4, x+3y ≤ 6, x,y ≥ 0.
	p := lp.Problem{NumVars: 2, Objective: []float64{3, 2}}
	p.AddConstraint([]float64{1, 1}, lp.LE, 4)
	p.AddConstraint([]float64{1, 3}, lp.LE, 6)
	sol, err := lp.Solve(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Status, sol.Objective)
	// Output: optimal 12
}
