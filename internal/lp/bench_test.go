package lp

import (
	"math/rand"
	"testing"
)

// randomLP builds a bounded random LP with n variables and m extra
// constraints (plus the bounding box).
func randomLP(n, m int, rng *rand.Rand) Problem {
	p := Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		row[i] = 1
		p.AddConstraint(row, LE, 1+rng.Float64()*10)
	}
	for k := 0; k < m; k++ {
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		p.AddConstraint(row, LE, rng.Float64()*10)
	}
	return p
}

func BenchmarkSimplexSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomLP(10, 10, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randomLP(60, 60, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := randomLP(200, 120, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
