// Package lp implements a dense two-phase simplex solver for linear
// programs. It is the optimization substrate for the traffic-engineering
// allocators in internal/te (SWAN-style max-throughput, max-min
// fairness via iterative LPs, and the balanced fairness/throughput
// scheme), standing in for the commercial solvers those systems use in
// production.
//
// Problems are stated over non-negative variables:
//
//	maximize  c·x
//	subject to  a_i·x  (≤ | = | ≥)  b_i   for each row i
//	            x ≥ 0
//
// The implementation is a textbook dense tableau with Bland's rule
// (which precludes cycling), adequate for the problem sizes the TE
// substrate generates (hundreds of variables).
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // a·x ≤ b
	GE           // a·x ≥ b
	EQ           // a·x = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Constraint is one row a·x (op) b.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over non-negative variables. NumVars
// fixes the dimension; every constraint's Coeffs must have that length.
type Problem struct {
	NumVars     int
	Objective   []float64 // maximize Objective·x
	Constraints []Constraint
}

// AddConstraint appends a constraint (convenience builder).
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Op: op, RHS: rhs})
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Optimal)
	Objective float64   // c·x (valid when Optimal)
}

const eps = 1e-9

// Solve runs two-phase simplex on the problem.
func Solve(p Problem) (Solution, error) {
	if p.NumVars <= 0 {
		return Solution{}, fmt.Errorf("lp: NumVars = %d", p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return Solution{}, fmt.Errorf("lp: objective has %d coefficients for %d vars", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients for %d vars", i, len(c.Coeffs), p.NumVars)
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Solution{}, fmt.Errorf("lp: constraint %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return Solution{}, fmt.Errorf("lp: constraint %d has non-finite RHS", i)
		}
	}

	t := newTableau(p)

	// Phase 1: drive artificial variables to zero.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		if st := t.iterate(); st == Unbounded {
			// Phase 1 objective is bounded below by 0; unbounded here
			// indicates a logic error.
			return Solution{}, fmt.Errorf("lp: internal error: phase 1 unbounded")
		}
		// Phase 1 maximizes -(Σ artificials); an optimum below zero
		// means some artificial is stuck positive: infeasible.
		if t.objectiveValue() < -eps {
			return Solution{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective.
	t.setPhase2Objective(p.Objective)
	if st := t.iterate(); st == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := t.extract(p.NumVars)
	obj := 0.0
	for i, c := range p.Objective {
		obj += c * x[i]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau in the form
//
//	rows:    m constraint rows over [structural | slack/surplus | artificial | RHS]
//	objRow:  reduced costs (maximization: pivot while some cost > eps)
type tableau struct {
	m, n          int // constraints, total columns excluding RHS
	numStruct     int
	numArtificial int
	artStart      int         // column index of first artificial
	rows          [][]float64 // m rows, each n+1 wide (RHS last)
	obj           []float64   // n+1 wide (current objective row, RHS last = value)
	basis         []int       // basis[i] = column basic in row i
}

func newTableau(p Problem) *tableau {
	m := len(p.Constraints)
	// Count auxiliary columns.
	numSlack := 0
	numArt := 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	n := p.NumVars + numSlack + numArt
	t := &tableau{
		m:             m,
		n:             n,
		numStruct:     p.NumVars,
		numArtificial: numArt,
		artStart:      p.NumVars + numSlack,
		rows:          make([][]float64, m),
		obj:           make([]float64, n+1),
		basis:         make([]int, m),
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, n+1)
		sign := 1.0
		op := c.Op
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[n] = rhs
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}
	return t
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// setPhase1Objective loads "maximize -(sum of artificials)" expressed in
// terms of the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := t.artStart; j < t.artStart+t.numArtificial; j++ {
		t.obj[j] = -1
	}
	// Price out basic artificial variables.
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.n; j++ {
				t.obj[j] += t.rows[i][j]
			}
		}
	}
}

// setPhase2Objective loads the original objective priced out against the
// current basis, zeroing artificial columns so they can never re-enter.
func (t *tableau) setPhase2Objective(c []float64) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	copy(t.obj, c)
	for i, b := range t.basis {
		if b < len(c) && c[b] != 0 {
			coef := c[b]
			for j := 0; j <= t.n; j++ {
				t.obj[j] -= coef * t.rows[i][j]
			}
			// Restore the basic column's own entry to 0 exactly.
			t.obj[b] = 0
		}
	}
	// Artificials are frozen out.
	for j := t.artStart; j < t.artStart+t.numArtificial; j++ {
		t.obj[j] = math.Inf(-1)
	}
	_ = c
}

// objectiveValue returns the current objective row value.
func (t *tableau) objectiveValue() float64 { return -t.obj[t.n] }

// iterate pivots until optimal or unbounded (Bland's rule).
func (t *tableau) iterate() Status {
	for {
		// Entering column: smallest index with positive reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.obj[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a <= eps {
				continue
			}
			ratio := t.rows[i][t.n] / a
			if ratio < bestRatio-eps ||
				(math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pval := prow[enter]
	for j := 0; j <= t.n; j++ {
		prow[j] /= pval
	}
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		factor := t.rows[i][enter]
		if factor == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.n; j++ {
			row[j] -= factor * prow[j]
		}
		row[enter] = 0
	}
	if f := t.obj[enter]; f != 0 && !math.IsInf(f, 0) {
		for j := 0; j <= t.n; j++ {
			if !math.IsInf(t.obj[j], 0) {
				t.obj[j] -= f * prow[j]
			}
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables out of the basis
// where possible (degenerate rows) so phase 2 cannot reuse them.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any non-artificial column with a nonzero entry.
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
		// If none exists the row is all-zero (redundant constraint);
		// the artificial stays basic at value 0, which is harmless
		// because phase 2 freezes artificial columns.
	}
}

// extract reads the structural variable values off the tableau.
func (t *tableau) extract(numVars int) []float64 {
	x := make([]float64, numVars)
	for i, b := range t.basis {
		if b < numVars {
			x[b] = t.rows[i][t.n]
			if x[b] < 0 && x[b] > -eps {
				x[b] = 0
			}
		}
	}
	return x
}
