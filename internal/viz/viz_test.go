package viz

import (
	"strings"
	"testing"

	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
)

func TestHeatmapShape(t *testing.T) {
	sp := scenario.SWANSpace()
	f := func(s scenario.Scenario) float64 { return s[0] - s[1] }
	out := Heatmap(f, sp, 30, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 10 rows + axis + label = 13 lines.
	if len(lines) != 13 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "latency") {
		t.Errorf("header missing Y metric: %q", lines[0])
	}
	if !strings.Contains(out, "throughput") {
		t.Error("X metric label missing")
	}
	// Monotone f: top-right (high tp, low lat is at bottom-right...)
	// f = tp - lat is maximal at (10, 0): bottom-right cell must be the
	// darkest shade, top-left the lightest.
	rows := lines[1 : 1+10]
	bottom := rows[len(rows)-1]
	topLeftCell := rows[0][strings.Index(rows[0], "|")+1]
	bottomRightCell := bottom[len(bottom)-1]
	if bottomRightCell != '@' {
		t.Errorf("max cell shade = %q, want '@'", bottomRightCell)
	}
	if topLeftCell == '@' {
		t.Error("min region shaded as max")
	}
}

func TestHeatmapConstantFunction(t *testing.T) {
	sp := scenario.SWANSpace()
	out := Heatmap(func(scenario.Scenario) float64 { return 7 }, sp, 20, 8)
	// Constant function: all cells the lightest shade, no panic on
	// zero span.
	if strings.Contains(strings.SplitN(out, "\n", 2)[1], "@") {
		t.Error("constant function produced dark cells")
	}
}

func TestHeatmapDefaultsAndErrors(t *testing.T) {
	sp := scenario.SWANSpace()
	out := Heatmap(func(s scenario.Scenario) float64 { return s[0] }, sp, 0, 0)
	if len(out) == 0 {
		t.Error("default-size heatmap empty")
	}
	one := scenario.MustNewSpace([]string{"x"}, sp.Ranges()[:1])
	if !strings.Contains(Heatmap(func(scenario.Scenario) float64 { return 0 }, one, 10, 10), "needs a 2-metric") {
		t.Error("1D space not rejected")
	}
}

func TestCandidateHeatmap(t *testing.T) {
	sk := sketch.SWAN()
	c, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	out := CandidateHeatmap(c, 40, 12)
	// The satisfying region (low latency) must be visibly darker than
	// the unsatisfying one: top rows (high latency) light, bottom rows
	// (low latency) dark.
	if !strings.Contains(out, "@") {
		t.Errorf("no dark cells in SWAN heatmap:\n%s", out)
	}
}

func TestDisagreementMap(t *testing.T) {
	sp := scenario.SWANSpace()
	f := func(s scenario.Scenario) float64 { return s[0] }
	g := func(s scenario.Scenario) float64 { return -s[0] }
	out := DisagreementMap(f, g, sp, 20, 8)
	if !strings.Contains(out, "X") {
		t.Errorf("opposite objectives show no disagreement:\n%s", out)
	}
	same := DisagreementMap(f, f, sp, 20, 8)
	if strings.Contains(strings.SplitN(same, "\n", 2)[1], "X") {
		t.Errorf("identical objectives disagree:\n%s", same)
	}
	one := scenario.MustNewSpace([]string{"x"}, sp.Ranges()[:1])
	if !strings.Contains(DisagreementMap(f, g, one, 5, 5), "needs a 2-metric") {
		t.Error("1D space not rejected")
	}
}
