// Package viz renders objective functions and preference data for
// terminals: ASCII heatmaps of two-metric objectives (so an architect
// can eyeball what the synthesizer learned) and comparison maps between
// two objectives (where do they rank scenarios differently?).
package viz

import (
	"fmt"
	"math"
	"strings"

	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
)

// shades orders the heatmap glyphs from lowest to highest value.
const shades = " .:-=+*#%@"

// Heatmap renders f over the first two metrics of the space as an
// ASCII grid of width x height cells. The first metric runs along the
// X axis (left → right, low → high), the second along the Y axis
// (bottom → top, low → high, like a plot). Values are normalized to
// the observed min/max.
func Heatmap(f func(scenario.Scenario) float64, space *scenario.Space, width, height int) string {
	if width < 2 || height < 2 {
		width, height = 40, 16
	}
	if space.Dim() < 2 {
		return "viz: heatmap needs a 2-metric space\n"
	}
	ranges := space.Ranges()
	xr, yr := ranges[0], ranges[1]

	vals := make([][]float64, height)
	lo, hi := math.Inf(1), math.Inf(-1)
	for row := 0; row < height; row++ {
		vals[row] = make([]float64, width)
		for col := 0; col < width; col++ {
			x := xr.Lo + xr.Width()*float64(col)/float64(width-1)
			// Row 0 is the top of the plot = highest Y.
			y := yr.Lo + yr.Width()*float64(height-1-row)/float64(height-1)
			v := f(scenario.Scenario{x, y})
			vals[row][col] = v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}

	names := space.Names()
	var b strings.Builder
	fmt.Fprintf(&b, "%s ↑  (shade: low %q → high %q over [%.3g, %.3g])\n",
		names[1], shades[0], shades[len(shades)-1], lo, hi)
	span := hi - lo
	for row := 0; row < height; row++ {
		y := yr.Lo + yr.Width()*float64(height-1-row)/float64(height-1)
		fmt.Fprintf(&b, "%8.3g |", y)
		for col := 0; col < width; col++ {
			idx := 0
			if span > 0 {
				idx = int((vals[row][col] - lo) / span * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.3g%*.3g  → %s\n", "", width/2, xr.Lo, width-width/2, xr.Hi, names[0])
	return b.String()
}

// CandidateHeatmap renders a synthesized candidate over its sketch's
// metric space.
func CandidateHeatmap(c *sketch.Candidate, width, height int) string {
	return Heatmap(c.Eval, c.Sketch().Space(), width, height)
}

// DisagreementMap renders where two objectives order scenario pairs
// differently: each cell compares the scenario at that cell against the
// space's midpoint scenario; cells where a and b disagree about that
// comparison are marked 'X', agreements '·'. It gives a quick visual of
// the behavioral difference between a learned objective and a reference.
func DisagreementMap(a, b func(scenario.Scenario) float64, space *scenario.Space, width, height int) string {
	if width < 2 || height < 2 {
		width, height = 40, 16
	}
	if space.Dim() < 2 {
		return "viz: disagreement map needs a 2-metric space\n"
	}
	ranges := space.Ranges()
	xr, yr := ranges[0], ranges[1]
	mid := make(scenario.Scenario, space.Dim())
	for i, r := range ranges {
		mid[i] = r.Lo + r.Width()/2
	}
	aMid, bMid := a(mid), b(mid)

	var disagreements int
	var bbuf strings.Builder
	names := space.Names()
	fmt.Fprintf(&bbuf, "disagreement vs midpoint %s ('X' = objectives order the pair differently)\n",
		space.Format(mid))
	for row := 0; row < height; row++ {
		y := yr.Lo + yr.Width()*float64(height-1-row)/float64(height-1)
		fmt.Fprintf(&bbuf, "%8.3g |", y)
		for col := 0; col < width; col++ {
			x := xr.Lo + xr.Width()*float64(col)/float64(width-1)
			s := scenario.Scenario{x, y}
			da := a(s) - aMid
			db := b(s) - bMid
			if da*db < 0 {
				bbuf.WriteByte('X')
				disagreements++
			} else {
				bbuf.WriteString("·")
			}
		}
		bbuf.WriteByte('\n')
	}
	fmt.Fprintf(&bbuf, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&bbuf, "%8s  %s → ;  disagreement cells: %d / %d\n",
		"", names[0], disagreements, width*height)
	return bbuf.String()
}
