package viz

// Golden rendering tests: the ASCII heatmaps are part of the CLI's
// user-facing output, so their exact layout is pinned. The inputs are
// fixed candidates (no randomness), making the renders byte-stable.
//
// Regenerate after an intentional layout change with:
//
//	go test ./internal/viz/ -run TestGolden -update-viz-golden

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"compsynth/internal/sketch"
)

var updateVizGolden = flag.Bool("update-viz-golden", false, "rewrite golden heatmap files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateVizGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-viz-golden): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s diverged from golden render:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenCandidateHeatmap(t *testing.T) {
	sk := sketch.SWAN()
	c, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "heatmap_swan_default.txt", CandidateHeatmap(c, 64, 18))
}

func TestGoldenDisagreementMap(t *testing.T) {
	sk := sketch.SWAN()
	a, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (sketch.SWANTargetParams{TpThrsh: 4, LThrsh: 80, Slope1: 2, Slope2: 6}).Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "disagreement_swan.txt",
		DisagreementMap(a.Eval, b.Eval, sk.Space(), 64, 18))
}
