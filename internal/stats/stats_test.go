package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean([]float64{7}); got != 7 {
		t.Errorf("Mean single = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-1, 1}, {2, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Errorf("interpolated quantile = %v", got)
	}
	if !math.IsNaN(Quantile([]float64{1}, math.NaN())) {
		t.Error("NaN q not NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestSIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := SIQR(xs); got != 1 {
		t.Errorf("SIQR = %v, want 1", got)
	}
	// Constant data has zero spread.
	if got := SIQR([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("constant SIQR = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("single StdDev = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("empty StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max not NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.SIQR != 1 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	str := s.String()
	for _, frag := range []string{"n=5", "mean=3", "median=3", "siqr=1"} {
		if !strings.Contains(str, frag) {
			t.Errorf("Summary.String missing %q: %s", frag, str)
		}
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if Quantile(xs, 0) != sorted[0] || Quantile(xs, 1) != sorted[n-1] {
			t.Fatal("extreme quantiles not min/max")
		}
	}
}

func TestPropMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSIQRNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if SIQR(xs) < 0 {
			t.Fatal("negative SIQR")
		}
	}
}
