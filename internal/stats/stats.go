// Package stats provides the summary statistics the paper reports:
// average, median and semi-interquartile range (SIQR), plus supporting
// aggregates for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median, or NaN for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the common default).
// It returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SIQR returns the semi-interquartile range (Q3-Q1)/2 — the dispersion
// measure reported in the paper's Table 1.
func SIQR(xs []float64) float64 {
	return (Quantile(xs, 0.75) - Quantile(xs, 0.25)) / 2
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the aggregates the experiment tables print.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	SIQR   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the samples.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		SIQR:   SIQR(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g siqr=%.4g sd=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.Median, s.SIQR, s.StdDev, s.Min, s.Max)
}
