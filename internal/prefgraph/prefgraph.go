// Package prefgraph implements the preference graph G of the paper's
// Section 4.2: a directed acyclic graph whose vertices are concrete
// scenarios (identified by integer IDs) and whose edge u→v records that
// the architect prefers scenario u over scenario v.
//
// The synthesizer must ensure every synthesized objective function f
// satisfies f(u) > f(v) for every edge u→v, so the graph must stay
// acyclic — a cycle would make the constraint set unsatisfiable. The
// package detects cycles on insertion and, for the noise-robustness
// extension (paper §6.1), can localize and break cycles introduced by
// inconsistent user input.
package prefgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a single preference: Better is preferred over Worse.
type Edge struct {
	Better, Worse int
}

// Graph is a preference DAG over integer scenario IDs. The zero value
// is not usable; call New.
type Graph struct {
	succ map[int]map[int]bool // succ[u][v]: u preferred over v
	pred map[int]map[int]bool
	n    int // number of edges
	// weight is the accumulated observation weight per ordered pair
	// (weighted-edge learning; see weighted.go). Nil until the first
	// Observe — the unweighted Add/ForceAdd surface never touches it.
	weight map[Edge]float64
}

func errSelf(v int) error {
	return fmt.Errorf("prefgraph: self-preference on vertex %d", v)
}

// New returns an empty preference graph.
func New() *Graph {
	return &Graph{
		succ: make(map[int]map[int]bool),
		pred: make(map[int]map[int]bool),
	}
}

// ErrCycle reports that adding an edge would create a preference cycle.
// Path is a witness: a chain of vertices from the proposed Worse back to
// the proposed Better through existing edges.
type ErrCycle struct {
	Better, Worse int
	Path          []int
}

func (e ErrCycle) Error() string {
	return fmt.Sprintf("prefgraph: preference %d > %d contradicts existing chain %v", e.Better, e.Worse, e.Path)
}

// AddVertex ensures the vertex exists (isolated vertices are allowed;
// they represent scenarios shown to the user but not yet ranked against
// anything).
func (g *Graph) AddVertex(v int) {
	if g.succ[v] == nil {
		g.succ[v] = make(map[int]bool)
	}
	if g.pred[v] == nil {
		g.pred[v] = make(map[int]bool)
	}
}

// Add inserts the preference better > worse. It returns ErrCycle (and
// leaves the graph unchanged) if the opposite ordering is already
// implied, and an error for a self-preference. Adding an existing edge
// is a no-op.
func (g *Graph) Add(better, worse int) error {
	if better == worse {
		return errSelf(better)
	}
	g.AddVertex(better)
	g.AddVertex(worse)
	if g.succ[better][worse] {
		return nil
	}
	if path := g.path(worse, better); path != nil {
		return ErrCycle{Better: better, Worse: worse, Path: path}
	}
	g.succ[better][worse] = true
	g.pred[worse][better] = true
	g.n++
	return nil
}

// ForceAdd inserts the edge even if it creates a cycle. It is the entry
// point for noisy user input; callers are expected to follow up with
// BreakCycles. The return value reports whether the graph is still
// acyclic afterwards.
func (g *Graph) ForceAdd(better, worse int) bool {
	if better == worse {
		return false
	}
	g.AddVertex(better)
	g.AddVertex(worse)
	if !g.succ[better][worse] {
		g.succ[better][worse] = true
		g.pred[worse][better] = true
		g.n++
	}
	return g.FindCycle() == nil
}

// Remove deletes the edge if present and reports whether it existed.
func (g *Graph) Remove(better, worse int) bool {
	if !g.succ[better][worse] {
		return false
	}
	delete(g.succ[better], worse)
	delete(g.pred[worse], better)
	g.n--
	return true
}

// Has reports whether the direct edge better→worse exists.
func (g *Graph) Has(better, worse int) bool { return g.succ[better][worse] }

// Prefers reports whether better is (transitively) preferred over worse.
func (g *Graph) Prefers(better, worse int) bool {
	if better == worse {
		return false
	}
	return g.path(better, worse) != nil
}

// Comparable reports whether the graph orders the two scenarios in
// either direction.
func (g *Graph) Comparable(a, b int) bool {
	return g.Prefers(a, b) || g.Prefers(b, a)
}

// NumEdges returns the number of direct edges.
func (g *Graph) NumEdges() int { return g.n }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.succ) }

// Vertices returns all vertex IDs in ascending order.
func (g *Graph) Vertices() []int {
	out := make([]int, 0, len(g.succ))
	for v := range g.succ {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns all direct edges, sorted for determinism.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.n)
	for u, ws := range g.succ {
		for w := range ws {
			out = append(out, Edge{Better: u, Worse: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Better != out[j].Better {
			return out[i].Better < out[j].Better
		}
		return out[i].Worse < out[j].Worse
	})
	return out
}

// path returns a vertex chain from src to dst following succ edges
// (inclusive of both endpoints), or nil if dst is unreachable. BFS keeps
// witnesses short for error messages.
func (g *Graph) path(src, dst int) []int {
	if g.succ[src] == nil {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := map[int]int{src: src}
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Deterministic expansion order.
		next := make([]int, 0, len(g.succ[u]))
		for v := range g.succ[u] {
			next = append(next, v)
		}
		sort.Ints(next)
		for _, v := range next {
			if _, seen := parent[v]; seen {
				continue
			}
			parent[v] = u
			if v == dst {
				// Reconstruct.
				var rev []int
				for x := dst; ; x = parent[x] {
					rev = append(rev, x)
					if x == src {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// FindCycle returns a directed cycle as a vertex list (first == last),
// or nil if the graph is acyclic.
func (g *Graph) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(g.succ))
	parent := make(map[int]int)
	var cycle []int

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		next := make([]int, 0, len(g.succ[u]))
		for v := range g.succ[u] {
			next = append(next, v)
		}
		sort.Ints(next)
		for _, v := range next {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u→v: reconstruct v ... u v.
				cycle = []int{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// cycle currently v, u, ..., child(v); reverse tail.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				cycle = append(cycle, v)
				return true
			}
		}
		color[u] = black
		return false
	}

	for _, u := range g.Vertices() {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}

// TopoSort returns the vertices in a topological order (most-preferred
// first where determined). It returns an error if the graph has a cycle.
// Ties are broken by ascending vertex ID, making the order deterministic.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make(map[int]int, len(g.succ))
	for v := range g.succ {
		indeg[v] = len(g.pred[v])
	}
	var ready []int
	for v, d := range indeg {
		if d == 0 {
			ready = append(ready, v)
		}
	}
	sort.Ints(ready)
	var out []int
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		out = append(out, u)
		var freed []int
		for v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				freed = append(freed, v)
			}
		}
		sort.Ints(freed)
		ready = mergeSorted(ready, freed)
	}
	if len(out) != len(g.succ) {
		return nil, fmt.Errorf("prefgraph: graph has a cycle: %v", g.FindCycle())
	}
	return out, nil
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// TransitiveReduction removes every edge u→v for which an alternative
// path u⇝v exists, returning the number of edges removed. The reduction
// of a DAG is unique and preserves the preference relation; it keeps the
// constraint set handed to the solver minimal.
func (g *Graph) TransitiveReduction() int {
	removed := 0
	for _, e := range g.Edges() {
		// Temporarily remove and test reachability.
		g.Remove(e.Better, e.Worse)
		if g.path(e.Better, e.Worse) != nil {
			removed++
			continue // edge is redundant; leave it out
		}
		// Edge was essential; restore.
		g.succ[e.Better][e.Worse] = true
		g.pred[e.Worse][e.Better] = true
		g.n++
	}
	return removed
}

// BreakCycles removes a minimal-count heuristic set of edges to restore
// acyclicity, preferring to drop the edges given lower weight (weight is
// the caller's confidence in that preference; unweighted callers can pass
// nil to drop arbitrary cycle edges). It returns the removed edges.
func (g *Graph) BreakCycles(weight func(Edge) float64) []Edge {
	var removed []Edge
	for {
		cycle := g.FindCycle()
		if cycle == nil {
			return removed
		}
		// Pick the lowest-weight edge along the cycle.
		best := Edge{Better: cycle[0], Worse: cycle[1]}
		bestW := edgeWeight(weight, best)
		for i := 1; i < len(cycle)-1; i++ {
			e := Edge{Better: cycle[i], Worse: cycle[i+1]}
			if w := edgeWeight(weight, e); w < bestW {
				best, bestW = e, w
			}
		}
		g.Remove(best.Better, best.Worse)
		removed = append(removed, best)
	}
}

func edgeWeight(weight func(Edge) float64, e Edge) float64 {
	if weight == nil {
		return 0
	}
	return weight(e)
}

// Clone returns a deep copy of the graph, accumulated edge weights
// included.
func (g *Graph) Clone() *Graph {
	c := New()
	for u, ws := range g.succ {
		c.AddVertex(u)
		for w := range ws {
			c.AddVertex(w)
			c.succ[u][w] = true
			c.pred[w][u] = true
			c.n++
		}
	}
	if g.weight != nil {
		c.weight = make(map[Edge]float64, len(g.weight))
		for e, w := range g.weight {
			c.weight[e] = w
		}
	}
	return c
}

// DOT renders the graph in Graphviz DOT syntax. label maps vertex IDs
// to display labels (nil uses the numeric ID). Edges point from the
// preferred scenario to the less-preferred one.
func (g *Graph) DOT(label func(int) string) string {
	if label == nil {
		label = func(v int) string { return fmt.Sprintf("s%d", v) }
	}
	var b strings.Builder
	b.WriteString("digraph preferences {\n  rankdir=TB;\n  node [shape=box];\n")
	for _, v := range g.Vertices() {
		fmt.Fprintf(&b, "  %d [label=%q];\n", v, label(v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -> %d;\n", e.Better, e.Worse)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the edge list, e.g. "{3>1, 3>2, 5>3}".
func (g *Graph) String() string {
	es := g.Edges()
	s := "{"
	for i, e := range es {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d>%d", e.Better, e.Worse)
	}
	return s + "}"
}
