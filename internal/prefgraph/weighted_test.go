package prefgraph

import (
	"math/rand"
	"testing"
)

func mustObserve(t *testing.T, g *Graph, better, worse int, w float64) ObserveResult {
	t.Helper()
	res, err := g.Observe(better, worse, w)
	if err != nil {
		t.Fatalf("Observe(%d, %d, %v): %v", better, worse, w, err)
	}
	return res
}

func TestObserveInstallsAndAccumulates(t *testing.T) {
	g := New()
	res := mustObserve(t, g, 1, 2, 0.4)
	if !res.Installed || !res.Added || res.Pending {
		t.Errorf("first uncontested observation: %+v, want installed+added", res)
	}
	if !g.Has(1, 2) {
		t.Error("edge 1>2 not installed")
	}
	res = mustObserve(t, g, 1, 2, 0.4)
	if !res.Installed || res.Added {
		t.Errorf("repeat observation: %+v, want installed without re-add", res)
	}
	if w := g.Weight(1, 2); w != 0.8 {
		t.Errorf("Weight(1,2) = %v, want 0.8", w)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestObserveSelfErrors(t *testing.T) {
	g := New()
	if _, err := g.Observe(3, 3, 1); err == nil {
		t.Error("self observation accepted")
	}
}

func TestWeightDefaults(t *testing.T) {
	g := New()
	if w := g.Weight(1, 2); w != 0 {
		t.Errorf("Weight of unseen pair = %v, want 0", w)
	}
	mustAdd(t, g, 1, 2)
	if w := g.Weight(1, 2); w != 1 {
		t.Errorf("Weight of unweighted installed edge = %v, want 1", w)
	}
	if w := g.Weight(2, 1); w != 0 {
		t.Errorf("Weight of reverse of installed edge = %v, want 0", w)
	}
}

// A contradiction stays pending until its accumulated weight strictly
// exceeds the weight of the installed answer, then repairs it — the
// noise-robust middle ground between reject and immediate repair.
func TestObserveContradictionBelowThresholdPending(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2) // firm answer, weight 1

	res := mustObserve(t, g, 2, 1, 0.5)
	if !res.Pending || res.Installed || res.Added {
		t.Errorf("contested observation below threshold: %+v, want pending", res)
	}
	if !g.Has(1, 2) || g.Has(2, 1) {
		t.Error("pending observation mutated the graph")
	}
	if w := g.Weight(2, 1); w != 0.5 {
		t.Errorf("pending support not recorded: Weight(2,1) = %v", w)
	}

	// 0.5+0.4 = 0.9 still does not beat the installed weight 1: equal
	// or weaker support never evicts (the zero-noise reject policy).
	res = mustObserve(t, g, 2, 1, 0.4)
	if !res.Pending {
		t.Errorf("support 0.9 vs installed 1: %+v, want pending", res)
	}
}

func TestObserveContradictionAboveThresholdRepairs(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustObserve(t, g, 2, 1, 0.5)
	mustObserve(t, g, 2, 1, 0.4)

	res := mustObserve(t, g, 2, 1, 0.6) // accumulated 1.5 > 1
	if !res.Installed || !res.Added || res.Pending {
		t.Fatalf("support 1.5 vs installed 1: %+v, want repair", res)
	}
	if len(res.Removed) != 1 || res.Removed[0] != (Edge{Better: 1, Worse: 2}) {
		t.Errorf("Removed = %v, want [{1 2}]", res.Removed)
	}
	if !g.Has(2, 1) || g.Has(1, 2) {
		t.Error("repair did not flip the edge")
	}
	if g.FindCycle() != nil {
		t.Error("graph cyclic after repair")
	}
}

// A transitive contradiction (no direct reverse edge, only an opposing
// path) repairs by evicting the weakest edge on the path — and only one
// eviction when that already clears every opposing path.
func TestObserveTransitiveRepairEvictsWeakestEdge(t *testing.T) {
	g := New()
	mustObserve(t, g, 1, 2, 3) // strong
	mustObserve(t, g, 2, 3, 1) // weak link

	res := mustObserve(t, g, 3, 1, 2) // contradicts path 1>2>3
	if !res.Added {
		t.Fatalf("support 2 vs weakest link 1: %+v, want repair", res)
	}
	if len(res.Removed) != 1 || res.Removed[0] != (Edge{Better: 2, Worse: 3}) {
		t.Errorf("Removed = %v, want the weak link {2 3}", res.Removed)
	}
	if !g.Has(1, 2) {
		t.Error("strong edge 1>2 evicted instead of the weak link")
	}
	if !g.Has(3, 1) || g.FindCycle() != nil {
		t.Error("observed edge missing or graph cyclic after repair")
	}
}

// When the opposing path cannot spare a strictly weaker edge the
// observation must roll back completely, including any edges it
// tentatively removed from other opposing paths.
func TestObservePendingRollsBackPartialRepair(t *testing.T) {
	g := New()
	// Two parallel paths 1→3: one weak (via 2), one strong (via 4).
	mustObserve(t, g, 1, 2, 1)
	mustObserve(t, g, 2, 3, 1)
	mustObserve(t, g, 1, 4, 5)
	mustObserve(t, g, 4, 3, 5)

	res := mustObserve(t, g, 3, 1, 2) // clears the weak path, stalls on the strong one
	if !res.Pending {
		t.Fatalf("result %+v, want pending (strong path survives)", res)
	}
	for _, e := range []Edge{{1, 2}, {2, 3}, {1, 4}, {4, 3}} {
		if !g.Has(e.Better, e.Worse) {
			t.Errorf("edge %v lost: partial repair not rolled back", e)
		}
	}
	if g.Has(3, 1) {
		t.Error("pending observation installed its edge")
	}
}

// With no contradictions (a zero-noise user) the weighted surface must
// produce exactly the graph the unweighted Add surface produces.
func TestObserveZeroNoiseMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10
	ga, gb := New(), New()
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		// Hidden total order: smaller index is better. Zero noise means
		// every answer agrees with it.
		if a > b {
			a, b = b, a
		}
		if err := ga.Add(a, b); err != nil {
			t.Fatalf("Add(%d, %d): %v", a, b, err)
		}
		if _, err := gb.Observe(a, b, 1); err != nil {
			t.Fatalf("Observe(%d, %d): %v", a, b, err)
		}
	}
	if ga.NumEdges() != gb.NumEdges() || ga.NumVertices() != gb.NumVertices() {
		t.Fatalf("counts differ: Add %d/%d, Observe %d/%d",
			ga.NumEdges(), ga.NumVertices(), gb.NumEdges(), gb.NumVertices())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if ga.Has(i, j) != gb.Has(i, j) {
				t.Errorf("Has(%d, %d): Add %v, Observe %v", i, j, ga.Has(i, j), gb.Has(i, j))
			}
			if ga.Prefers(i, j) != gb.Prefers(i, j) {
				t.Errorf("Prefers(%d, %d): Add %v, Observe %v", i, j, ga.Prefers(i, j), gb.Prefers(i, j))
			}
		}
	}
}

// Hedged answers (weight in (0,1)) and "unspecified" weights (≤ 0,
// counted firm) interact: a firm installed answer shrugs off hedged
// contradictions until they accumulate past it.
func TestObserveNonpositiveWeightCountsFirm(t *testing.T) {
	g := New()
	mustObserve(t, g, 1, 2, 0) // w ≤ 0 counts as a firm 1
	if w := g.Weight(1, 2); w != 1 {
		t.Errorf("Weight after w=0 observation = %v, want 1", w)
	}
	if res := mustObserve(t, g, 2, 1, 0.9); !res.Pending {
		t.Errorf("hedged 0.9 vs firm 1: %+v, want pending", res)
	}
	if res := mustObserve(t, g, 2, 1, 0.9); !res.Added {
		t.Errorf("accumulated 1.8 vs firm 1: %+v, want repair", res)
	}
}
