package prefgraph

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestAddAndQuery(t *testing.T) {
	g := New()
	if err := g.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(2, 3); err != nil {
		t.Fatal(err)
	}
	if !g.Has(1, 2) || g.Has(2, 1) {
		t.Error("direct edge query wrong")
	}
	if !g.Prefers(1, 3) {
		t.Error("transitive preference 1>3 not derived")
	}
	if g.Prefers(3, 1) {
		t.Error("reverse preference derived")
	}
	if g.Prefers(1, 1) {
		t.Error("self preference")
	}
	if !g.Comparable(1, 3) || g.Comparable(1, 4) {
		t.Error("Comparable wrong")
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Errorf("counts = %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
}

func TestAddDuplicateIsNoop(t *testing.T) {
	g := New()
	if err := g.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge counted: %d", g.NumEdges())
	}
}

func TestAddSelfErrors(t *testing.T) {
	g := New()
	if err := g.Add(1, 1); err == nil {
		t.Error("self edge accepted")
	}
}

func TestCycleRejected(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	err := g.Add(3, 1)
	var ec ErrCycle
	if !errors.As(err, &ec) {
		t.Fatalf("cycle not rejected: %v", err)
	}
	if ec.Better != 3 || ec.Worse != 1 {
		t.Errorf("ErrCycle endpoints %d,%d", ec.Better, ec.Worse)
	}
	// Witness path goes from worse=1 to better=3.
	if len(ec.Path) < 2 || ec.Path[0] != 1 || ec.Path[len(ec.Path)-1] != 3 {
		t.Errorf("witness path %v", ec.Path)
	}
	// Graph unchanged.
	if g.NumEdges() != 2 {
		t.Errorf("failed Add mutated graph: %d edges", g.NumEdges())
	}
	if g.FindCycle() != nil {
		t.Error("graph has cycle after rejected Add")
	}
}

func TestDirectReverseRejected(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	if err := g.Add(2, 1); err == nil {
		t.Error("direct contradiction accepted")
	}
}

func TestRemove(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	if !g.Remove(1, 2) {
		t.Error("Remove existing returned false")
	}
	if g.Remove(1, 2) {
		t.Error("Remove missing returned true")
	}
	if g.NumEdges() != 0 {
		t.Errorf("edges after remove = %d", g.NumEdges())
	}
	// After removal the reverse edge becomes legal.
	if err := g.Add(2, 1); err != nil {
		t.Errorf("reverse add after removal failed: %v", err)
	}
}

func TestForceAddAndFindCycle(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	if ok := g.ForceAdd(3, 1); ok {
		t.Error("ForceAdd creating cycle reported acyclic")
	}
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("cycle not found after ForceAdd")
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Errorf("cycle not closed: %v", cycle)
	}
	seen := map[int]bool{}
	for _, v := range cycle[:len(cycle)-1] {
		if seen[v] {
			t.Errorf("cycle revisits %d: %v", v, cycle)
		}
		seen[v] = true
	}
	// All cycle edges must exist.
	for i := 0; i+1 < len(cycle); i++ {
		if !g.Has(cycle[i], cycle[i+1]) {
			t.Errorf("cycle edge %d->%d missing", cycle[i], cycle[i+1])
		}
	}
}

func TestForceAddSelfRejected(t *testing.T) {
	g := New()
	if g.ForceAdd(1, 1) {
		t.Error("self ForceAdd returned acyclic=true after adding nothing is fine, but edge must not exist")
	}
	if g.Has(1, 1) {
		t.Error("self edge added")
	}
}

func TestBreakCyclesRestoresDAG(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	g.ForceAdd(3, 1)
	removed := g.BreakCycles(nil)
	if len(removed) == 0 {
		t.Fatal("no edges removed")
	}
	if g.FindCycle() != nil {
		t.Error("cycle remains after BreakCycles")
	}
}

func TestBreakCyclesPrefersLowWeight(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	g.ForceAdd(3, 1) // the noisy edge
	weight := func(e Edge) float64 {
		if e.Better == 3 && e.Worse == 1 {
			return 0.1 // low confidence
		}
		return 1.0
	}
	removed := g.BreakCycles(weight)
	if len(removed) != 1 || removed[0] != (Edge{Better: 3, Worse: 1}) {
		t.Errorf("removed %v, want the low-confidence edge", removed)
	}
	if !g.Has(1, 2) || !g.Has(2, 3) {
		t.Error("high-confidence edges removed")
	}
}

func TestTopoSort(t *testing.T) {
	g := New()
	mustAdd(t, g, 5, 3)
	mustAdd(t, g, 3, 1)
	mustAdd(t, g, 5, 4)
	mustAdd(t, g, 4, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Better] > pos[e.Worse] {
			t.Errorf("topo order violates %d>%d: %v", e.Better, e.Worse, order)
		}
	}
	// Deterministic: run again, same order.
	order2, _ := g.TopoSort()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("TopoSort not deterministic: %v vs %v", order, order2)
		}
	}
}

func TestTopoSortCycleError(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	g.ForceAdd(2, 1)
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort on cyclic graph succeeded")
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	mustAdd(t, g, 1, 3) // redundant
	removed := g.TransitiveReduction()
	if removed != 1 {
		t.Errorf("removed %d edges, want 1", removed)
	}
	if g.Has(1, 3) {
		t.Error("redundant edge kept")
	}
	if !g.Prefers(1, 3) {
		t.Error("reduction lost transitive preference")
	}
	// Reduction of a reduced graph removes nothing.
	if again := g.TransitiveReduction(); again != 0 {
		t.Errorf("second reduction removed %d", again)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	c := g.Clone()
	mustAdd(t, c, 2, 3)
	if g.NumEdges() != 1 {
		t.Error("clone mutation leaked to original")
	}
	if c.NumEdges() != 2 {
		t.Error("clone missing edges")
	}
	if !c.Has(1, 2) {
		t.Error("clone lost original edge")
	}
}

func TestVerticesAndString(t *testing.T) {
	g := New()
	mustAdd(t, g, 3, 1)
	g.AddVertex(7)
	vs := g.Vertices()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 7 {
		t.Errorf("Vertices = %v", vs)
	}
	if s := g.String(); s != "{3>1}" {
		t.Errorf("String = %q", s)
	}
}

// Property: random DAG insertion order never yields a cycle, and
// Prefers is consistent with the edge-insertion partial order.
func TestPropRandomDAGStaysAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 2 + rng.Intn(20)
		// Random true order: vertex i preferred over j iff perm[i] < perm[j].
		perm := rng.Perm(n)
		rank := make([]int, n)
		for i, p := range perm {
			rank[p] = i
		}
		for k := 0; k < 4*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if rank[i] > rank[j] {
				i, j = j, i
			}
			if err := g.Add(i, j); err != nil {
				t.Fatalf("consistent edge rejected: %v", err)
			}
		}
		if g.FindCycle() != nil {
			t.Fatal("consistent insertions produced a cycle")
		}
		if _, err := g.TopoSort(); err != nil {
			t.Fatalf("TopoSort failed on DAG: %v", err)
		}
		// Prefers must agree with the true order.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if g.Prefers(a, b) && rank[a] > rank[b] {
					t.Fatalf("derived preference %d>%d contradicts true order", a, b)
				}
			}
		}
	}
}

// Property: transitive reduction preserves the reachability relation.
func TestPropReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := New()
		n := 3 + rng.Intn(12)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			_ = g.Add(i, j) // cycle-creating edges silently skipped
		}
		before := map[[2]int]bool{}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				before[[2]int{a, b}] = g.Prefers(a, b)
			}
		}
		g.TransitiveReduction()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if g.Prefers(a, b) != before[[2]int{a, b}] {
					t.Fatalf("reduction changed reachability %d->%d", a, b)
				}
			}
		}
	}
}

// Property: BreakCycles always restores acyclicity on random noisy graphs.
func TestPropBreakCyclesAlwaysRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		g := New()
		n := 3 + rng.Intn(10)
		for k := 0; k < 4*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				g.ForceAdd(i, j)
			}
		}
		g.BreakCycles(func(e Edge) float64 { return rng.Float64() })
		if g.FindCycle() != nil {
			t.Fatal("cycle remains")
		}
	}
}

func mustAdd(t *testing.T, g *Graph, better, worse int) {
	t.Helper()
	if err := g.Add(better, worse); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := New()
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	out := g.DOT(nil)
	for _, frag := range []string{"digraph preferences", "1 -> 2", "2 -> 3", `label="s1"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, out)
		}
	}
	labeled := g.DOT(func(v int) string { return fmt.Sprintf("node-%d", v) })
	if !strings.Contains(labeled, `label="node-2"`) {
		t.Errorf("custom label missing:\n%s", labeled)
	}
}
