package prefgraph

// Weighted-edge learning (noise-robust preference accumulation).
//
// The classic Add/ForceAdd surface treats every answer as ground truth:
// the first contradicting answer either bounces (reject) or immediately
// rewrites history (repair). Crowdsourced and fatigued users need a
// middle ground — evidence should accumulate, and the graph should only
// be repaired when the accumulated weight for an ordering actually
// exceeds the weight of the installed edges contradicting it.
//
// Observe implements that rule. Every observation of better>worse adds
// its weight to the pair's accumulated support, whether or not an edge
// can be installed. An edge installs when no opposing path exists, or
// when every opposing path can be cleared by removing an edge strictly
// weaker than the new support; otherwise the support stays pending and
// the graph is unchanged (the observation is not lost — enough repeat
// observations eventually tip the balance).
//
// Edges installed through the unweighted Add/ForceAdd surface count as
// support 1 (one firm observation), so mixed use keeps the zero-noise
// behavior: a fresh contradiction with weight 1 never evicts an
// installed answer of weight 1 — exactly the reject policy — and a
// weighted run with no contradictions produces the same graph as the
// unweighted surface (TestObserveZeroNoiseMatchesAdd).

// ObserveResult reports what an Observe call did to the graph.
type ObserveResult struct {
	// Installed reports that the observed edge is now present in the
	// DAG (whether it was already there or was added by this call).
	Installed bool
	// Added reports that this call added the edge.
	Added bool
	// Removed lists the contradicting edges repaired away to make room
	// (non-empty only when Added).
	Removed []Edge
	// Pending reports that the observation contradicts installed
	// preferences of at least equal weight: the support was recorded
	// but the graph is unchanged.
	Pending bool
}

// Weight returns the accumulated observation weight for the ordered
// pair better>worse. Installed edges that were never Observed (added
// through Add/ForceAdd) count as 1; pairs never seen count as 0.
func (g *Graph) Weight(better, worse int) float64 {
	w := g.weight[Edge{Better: better, Worse: worse}]
	if w == 0 && g.succ[better][worse] {
		return 1
	}
	return w
}

// Observe records a weighted observation of better>worse and installs
// the edge when the accumulated support justifies it; see the file
// comment for the semantics. w ≤ 0 counts as 1 (a firm answer). The
// self-pair is rejected like Add rejects it.
func (g *Graph) Observe(better, worse int, w float64) (ObserveResult, error) {
	if better == worse {
		return ObserveResult{}, errSelf(better)
	}
	if w <= 0 {
		w = 1
	}
	g.AddVertex(better)
	g.AddVertex(worse)
	if g.weight == nil {
		g.weight = make(map[Edge]float64)
	}
	e := Edge{Better: better, Worse: worse}
	// Seed the implicit weight of a pre-existing unweighted edge before
	// accumulating, so Add-then-Observe histories weigh the same as
	// Observe-only ones.
	if g.weight[e] == 0 && g.succ[better][worse] {
		g.weight[e] = 1
	}
	g.weight[e] += w
	if g.succ[better][worse] {
		return ObserveResult{Installed: true}, nil
	}
	support := g.weight[e]

	// Clear opposing paths while each can spare an edge strictly weaker
	// than the accumulated support; roll back and stay pending when one
	// cannot.
	var removed []Edge
	for {
		p := g.path(worse, better)
		if p == nil {
			break
		}
		weak := Edge{Better: p[0], Worse: p[1]}
		weakW := g.Weight(weak.Better, weak.Worse)
		for i := 1; i+1 < len(p); i++ {
			cand := Edge{Better: p[i], Worse: p[i+1]}
			if cw := g.Weight(cand.Better, cand.Worse); cw < weakW {
				weak, weakW = cand, cw
			}
		}
		if weakW >= support {
			for _, r := range removed {
				g.succ[r.Better][r.Worse] = true
				g.pred[r.Worse][r.Better] = true
				g.n++
			}
			return ObserveResult{Pending: true}, nil
		}
		g.Remove(weak.Better, weak.Worse)
		removed = append(removed, weak)
	}
	g.succ[better][worse] = true
	g.pred[worse][better] = true
	g.n++
	return ObserveResult{Installed: true, Added: true, Removed: removed}, nil
}
