// Package abr implements the adaptive-bitrate video streaming
// application of the paper's §6.2: a chunk-based playback simulator
// with bandwidth traces and reference ABR algorithms (rate-based,
// buffer-based à la BBA, and a lookahead hybrid). Each simulated
// session yields the QoE metrics the paper lists (average bitrate,
// rebuffering, bitrate switching, startup delay); the comparative
// synthesizer learns how a publisher trades those metrics off by
// ranking simulated sessions.
package abr

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"compsynth/internal/interval"
	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
)

// DefaultLadder is a typical HTTP streaming bitrate ladder in Mbps.
var DefaultLadder = []float64{0.35, 0.75, 1.2, 2.4, 4.8}

// TraceSample is a piecewise-constant bandwidth segment.
type TraceSample struct {
	Duration float64 // seconds
	Mbps     float64
}

// Trace is a bandwidth trace. Playback wraps around when the trace is
// shorter than the session.
type Trace struct {
	samples []TraceSample
	total   float64
}

// NewTrace validates and builds a trace.
func NewTrace(samples []TraceSample) (*Trace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("abr: empty trace")
	}
	t := &Trace{samples: append([]TraceSample(nil), samples...)}
	for i, s := range samples {
		if s.Duration <= 0 || math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
			return nil, fmt.Errorf("abr: sample %d duration %v", i, s.Duration)
		}
		if s.Mbps <= 0 || math.IsNaN(s.Mbps) || math.IsInf(s.Mbps, 0) {
			return nil, fmt.Errorf("abr: sample %d bandwidth %v", i, s.Mbps)
		}
		t.total += s.Duration
	}
	return t, nil
}

// MustNewTrace is NewTrace but panics on error.
func MustNewTrace(samples []TraceSample) *Trace {
	t, err := NewTrace(samples)
	if err != nil {
		panic(err)
	}
	return t
}

// Constant returns a flat trace.
func Constant(mbps float64) *Trace {
	return MustNewTrace([]TraceSample{{Duration: 3600, Mbps: mbps}})
}

// RandomWalk returns a seeded random-walk trace: stepDur-second
// segments whose bandwidth multiplies by a lognormal factor, clamped
// to [minMbps, maxMbps].
func RandomWalk(segments int, stepDur, startMbps, minMbps, maxMbps float64, rng *rand.Rand) *Trace {
	if segments < 1 {
		panic("abr: RandomWalk needs segments >= 1")
	}
	samples := make([]TraceSample, segments)
	bw := startMbps
	for i := range samples {
		samples[i] = TraceSample{Duration: stepDur, Mbps: bw}
		bw *= math.Exp(rng.NormFloat64() * 0.25)
		bw = math.Max(minMbps, math.Min(maxMbps, bw))
	}
	return MustNewTrace(samples)
}

// Stepped returns a trace alternating between high and low bandwidth —
// the classic ABR stress pattern.
func Stepped(highMbps, lowMbps, periodSec float64, periods int) *Trace {
	var samples []TraceSample
	for i := 0; i < periods; i++ {
		samples = append(samples,
			TraceSample{Duration: periodSec, Mbps: highMbps},
			TraceSample{Duration: periodSec, Mbps: lowMbps},
		)
	}
	return MustNewTrace(samples)
}

// ParseTrace reads a bandwidth trace in the common two-column text
// format used by public throughput datasets (FCC broadband, 3G/HSDPA
// traces and the Pensieve-style cooked variants):
//
//	# comment
//	<duration-seconds> <bandwidth-mbps>
//	...
//
// Blank lines and #-comments are ignored; a single-column line is
// interpreted as a bandwidth sample with a 1-second duration (the
// convention of per-second trace files).
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var samples []TraceSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var dur, mbps float64
		var err error
		switch len(fields) {
		case 1:
			dur = 1
			mbps, err = strconv.ParseFloat(fields[0], 64)
		case 2:
			dur, err = strconv.ParseFloat(fields[0], 64)
			if err == nil {
				mbps, err = strconv.ParseFloat(fields[1], 64)
			}
		default:
			return nil, fmt.Errorf("abr: trace line %d: want 1 or 2 columns, got %d", lineNo, len(fields))
		}
		if err != nil {
			return nil, fmt.Errorf("abr: trace line %d: %v", lineNo, err)
		}
		samples = append(samples, TraceSample{Duration: dur, Mbps: mbps})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("abr: read trace: %w", err)
	}
	return NewTrace(samples)
}

// WriteTrace renders a trace in the two-column ParseTrace format.
func WriteTrace(w io.Writer, t *Trace) error {
	var b strings.Builder
	for _, s := range t.samples {
		fmt.Fprintf(&b, "%g %g\n", s.Duration, s.Mbps)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// bandwidthAt returns the bandwidth at absolute time t (wrapping).
func (t *Trace) bandwidthAt(at float64) float64 {
	at = math.Mod(at, t.total)
	for _, s := range t.samples {
		if at < s.Duration {
			return s.Mbps
		}
		at -= s.Duration
	}
	return t.samples[len(t.samples)-1].Mbps
}

// downloadTime integrates the trace from start until megabits have been
// transferred, returning the elapsed seconds.
func (t *Trace) downloadTime(start, megabits float64) float64 {
	elapsed := 0.0
	remaining := megabits
	for remaining > 1e-12 {
		bw := t.bandwidthAt(start + elapsed)
		// Time left in the current trace segment.
		segLeft := t.segmentRemaining(start + elapsed)
		canSend := bw * segLeft
		if canSend >= remaining {
			elapsed += remaining / bw
			return elapsed
		}
		remaining -= canSend
		elapsed += segLeft
	}
	return elapsed
}

func (t *Trace) segmentRemaining(at float64) float64 {
	at = math.Mod(at, t.total)
	for _, s := range t.samples {
		if at < s.Duration {
			return s.Duration - at
		}
		at -= s.Duration
	}
	return t.samples[len(t.samples)-1].Duration
}

// PlayerState is the observable state an ABR algorithm decides on.
type PlayerState struct {
	// BufferSec is the current playback buffer in seconds.
	BufferSec float64
	// LastIndex is the ladder index of the previous chunk (-1 for the
	// first chunk).
	LastIndex int
	// ThroughputMbps is the EWMA throughput estimate (0 before the
	// first download).
	ThroughputMbps float64
	// ChunkIndex is the index of the chunk being decided.
	ChunkIndex int
	// ChunkSec is the chunk duration in seconds.
	ChunkSec float64
	// Ladder is the available bitrate ladder (ascending Mbps).
	Ladder []float64
}

// Algorithm selects the bitrate ladder index for the next chunk.
type Algorithm interface {
	Name() string
	Choose(s PlayerState) int
}

// RateBased picks the highest bitrate below Safety × estimated
// throughput (classic throughput-based ABR).
type RateBased struct {
	// Safety discounts the estimate (typical 0.9).
	Safety float64
}

// Name implements Algorithm.
func (RateBased) Name() string { return "rate-based" }

// Choose implements Algorithm.
func (a RateBased) Choose(s PlayerState) int {
	safety := a.Safety
	if safety == 0 {
		safety = 0.9
	}
	budget := s.ThroughputMbps * safety
	best := 0
	for i, r := range s.Ladder {
		if r <= budget {
			best = i
		}
	}
	return best
}

// BufferBased is BBA-style: bitrate is a linear function of buffer
// occupancy between a reservoir and a cushion.
type BufferBased struct {
	// ReservoirSec plays the lowest bitrate below this buffer level
	// (typical 5s); CushionSec reaches the top of the ladder (typical 20s).
	ReservoirSec, CushionSec float64
}

// Name implements Algorithm.
func (BufferBased) Name() string { return "buffer-based" }

// Choose implements Algorithm.
func (a BufferBased) Choose(s PlayerState) int {
	reservoir, cushion := a.ReservoirSec, a.CushionSec
	if reservoir == 0 {
		reservoir = 5
	}
	if cushion == 0 {
		cushion = 20
	}
	if s.BufferSec <= reservoir {
		return 0
	}
	if s.BufferSec >= cushion {
		return len(s.Ladder) - 1
	}
	frac := (s.BufferSec - reservoir) / (cushion - reservoir)
	idx := int(frac * float64(len(s.Ladder)-1))
	if idx >= len(s.Ladder) {
		idx = len(s.Ladder) - 1
	}
	return idx
}

// Hybrid is a small lookahead controller in the spirit of MPC: it
// scores each candidate bitrate by predicted local QoE (bitrate reward
// minus rebuffer and switch penalties over one chunk) using the
// throughput estimate, and picks the argmax.
type Hybrid struct {
	// RebufferPenalty and SwitchPenalty weight the lookahead score
	// (defaults 4.0 and 1.0 per Mbps).
	RebufferPenalty, SwitchPenalty float64
	// ChunkSec is the chunk duration used for prediction (default 4).
	ChunkSec float64
}

// Name implements Algorithm.
func (Hybrid) Name() string { return "hybrid-mpc" }

// Choose implements Algorithm.
func (a Hybrid) Choose(s PlayerState) int {
	rebufPen := a.RebufferPenalty
	if rebufPen == 0 {
		rebufPen = 4
	}
	switchPen := a.SwitchPenalty
	if switchPen == 0 {
		switchPen = 1
	}
	chunk := a.ChunkSec
	if chunk == 0 {
		chunk = 4
	}
	est := s.ThroughputMbps
	if est <= 0 {
		return 0
	}
	best, bestScore := 0, math.Inf(-1)
	for i, r := range s.Ladder {
		dlTime := r * chunk / est
		rebuf := math.Max(0, dlTime-s.BufferSec)
		score := r - rebufPen*rebuf
		if s.LastIndex >= 0 {
			score -= switchPen * math.Abs(r-s.Ladder[s.LastIndex])
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// BOLA is the buffer-based Lyapunov controller of Spiteri et al.
// (BOLA-BASIC, INFOCOM'16): it selects the ladder index maximizing
//
//	(V·(v_m + γp) − Q) / r_m
//
// where v_m = ln(r_m / r_min) is the utility of rung m, Q is the
// buffer level in chunk units, and V is calibrated so the top rung is
// picked once the buffer reaches BufferTargetSec. Unlike the simple
// BufferBased controller it weighs utility *per byte*, which makes it
// provably near-optimal for the utility-minus-rebuffer objective.
type BOLA struct {
	// GammaP is the γp rebuffer-avoidance term in utility units
	// (default 5).
	GammaP float64
	// BufferTargetSec is the buffer level at which the top rung is
	// chosen (default 25s).
	BufferTargetSec float64
}

// Name implements Algorithm.
func (BOLA) Name() string { return "bola" }

// Choose implements Algorithm.
func (a BOLA) Choose(s PlayerState) int {
	gp := a.GammaP
	if gp == 0 {
		gp = 5
	}
	target := a.BufferTargetSec
	if target == 0 {
		target = 25
	}
	chunk := s.ChunkSec
	if chunk <= 0 {
		chunk = 4
	}
	rMin := s.Ladder[0]
	vMax := math.Log(s.Ladder[len(s.Ladder)-1] / rMin)
	qMax := target / chunk
	if qMax <= 1 {
		qMax = 2
	}
	v := (qMax - 1) / (vMax + gp)
	q := s.BufferSec / chunk
	best, bestScore := 0, math.Inf(-1)
	for m, r := range s.Ladder {
		util := math.Log(r / rMin)
		score := (v*(util+gp) - q) / r
		// Ties break to the higher bitrate, per the BOLA paper.
		if score >= bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// Metrics are the QoE measurements of one simulated session — the
// quantities the paper's §6.2 lists as impacting user experience.
type Metrics struct {
	// AvgBitrateMbps is the mean selected bitrate.
	AvgBitrateMbps float64
	// RebufferRatio is stall time divided by session play time.
	RebufferRatio float64
	// SwitchesPerMin is the mean absolute ladder-level change rate.
	SwitchesPerMin float64
	// StartupSec is the delay before playback starts.
	StartupSec float64
}

// Scenario renders the metrics as a scenario over Space().
func (m Metrics) Scenario() scenario.Scenario {
	return scenario.Scenario{m.AvgBitrateMbps, m.RebufferRatio, m.SwitchesPerMin, m.StartupSec}
}

// Space returns the QoE metric space used for objective synthesis:
// bitrate ∈ [0,5] Mbps, rebuffer ratio ∈ [0,1], switches/min ∈ [0,30],
// startup ∈ [0,30] s.
func Space() *scenario.Space {
	return scenario.MustNewSpace(
		[]string{"bitrate", "rebuffer", "switches", "startup"},
		[]interval.Interval{
			interval.New(0, 5),
			interval.New(0, 1),
			interval.New(0, 30),
			interval.New(0, 30),
		},
	)
}

// QoESketch returns a weighted-sum QoE objective sketch over Space():
// + w_bitrate·bitrate − w_rebuffer·rebuffer − w_switches·switches −
// w_startup·startup, weights ∈ [0, 20]. This is the "simple linear
// combination" shape the paper notes state-of-the-art ABR work uses,
// with the weights left to comparative synthesis instead of hand-tuning.
func QoESketch() *sketch.Sketch {
	sk, err := sketch.WeightedSum("abr-qoe", Space(), []float64{1, -1, -1, -1}, interval.New(0, 20))
	if err != nil {
		panic(err)
	}
	return sk
}

// Config parameterizes a simulation.
type Config struct {
	// ChunkSec is the chunk duration (default 4s).
	ChunkSec float64
	// NumChunks is the session length in chunks (default 75 = 5 min).
	NumChunks int
	// Ladder is the bitrate ladder (default DefaultLadder).
	Ladder []float64
	// MaxBufferSec caps the buffer (default 30s).
	MaxBufferSec float64
	// EWMAWeight is the throughput estimator's new-sample weight
	// (default 0.35).
	EWMAWeight float64
}

func (c Config) withDefaults() Config {
	if c.ChunkSec == 0 {
		c.ChunkSec = 4
	}
	if c.NumChunks == 0 {
		c.NumChunks = 75
	}
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder
	}
	if c.MaxBufferSec == 0 {
		c.MaxBufferSec = 30
	}
	if c.EWMAWeight == 0 {
		c.EWMAWeight = 0.35
	}
	return c
}

// Simulate plays a session of the algorithm over the trace and returns
// its QoE metrics.
func Simulate(algo Algorithm, trace *Trace, cfg Config) (Metrics, error) {
	if algo == nil || trace == nil {
		return Metrics{}, fmt.Errorf("abr: nil algorithm or trace")
	}
	cfg = cfg.withDefaults()
	if cfg.ChunkSec <= 0 || cfg.NumChunks <= 0 || cfg.MaxBufferSec <= 0 {
		return Metrics{}, fmt.Errorf("abr: invalid config %+v", cfg)
	}

	var (
		clock     float64
		buffer    float64
		playing   bool
		startup   float64
		rebuffer  float64
		bitSum    float64
		switchSum float64
		last      = -1
		estimate  float64
	)
	for i := 0; i < cfg.NumChunks; i++ {
		choice := algo.Choose(PlayerState{
			BufferSec:      buffer,
			LastIndex:      last,
			ThroughputMbps: estimate,
			ChunkIndex:     i,
			ChunkSec:       cfg.ChunkSec,
			Ladder:         cfg.Ladder,
		})
		if choice < 0 || choice >= len(cfg.Ladder) {
			return Metrics{}, fmt.Errorf("abr: %s chose ladder index %d of %d", algo.Name(), choice, len(cfg.Ladder))
		}
		rate := cfg.Ladder[choice]
		megabits := rate * cfg.ChunkSec
		dl := trace.downloadTime(clock, megabits)

		if !playing {
			startup += dl
		} else if dl > buffer {
			rebuffer += dl - buffer
			buffer = 0
		} else {
			buffer -= dl
		}
		clock += dl
		buffer += cfg.ChunkSec
		if !playing {
			playing = true // play as soon as the first chunk arrives
		}
		// Buffer cap: wait (while playing) until there is room.
		if buffer > cfg.MaxBufferSec {
			wait := buffer - cfg.MaxBufferSec
			clock += wait
			buffer = cfg.MaxBufferSec
		}

		// Throughput sample.
		if dl > 0 {
			sample := megabits / dl
			if estimate == 0 {
				estimate = sample
			} else {
				estimate = cfg.EWMAWeight*sample + (1-cfg.EWMAWeight)*estimate
			}
		}
		bitSum += rate
		if last >= 0 {
			switchSum += math.Abs(float64(choice - last))
		}
		last = choice
	}

	playSec := float64(cfg.NumChunks) * cfg.ChunkSec
	m := Metrics{
		AvgBitrateMbps: bitSum / float64(cfg.NumChunks),
		RebufferRatio:  rebuffer / (playSec + rebuffer),
		SwitchesPerMin: switchSum / (playSec / 60),
		StartupSec:     startup,
	}
	return m, nil
}

// TuneHybrid grid-searches the Hybrid controller's penalty knobs for
// the configuration whose sessions score highest under a (learned) QoE
// objective averaged across the traces — the §6.2 loop closed: the
// synthesizer learns what "good QoE" means, then that objective tunes
// the ABR algorithm. Returns the tuned algorithm and its mean score.
func TuneHybrid(objective *sketch.Candidate, traces []*Trace, cfg Config,
	rebufferGrid, switchGrid []float64) (Hybrid, float64, error) {
	if len(traces) == 0 {
		return Hybrid{}, 0, fmt.Errorf("abr: TuneHybrid needs traces")
	}
	if len(rebufferGrid) == 0 {
		rebufferGrid = []float64{1, 2, 4, 8, 16}
	}
	if len(switchGrid) == 0 {
		switchGrid = []float64{0.25, 0.5, 1, 2, 4}
	}
	space := objective.Sketch().Space()
	bestScore := math.Inf(-1)
	var best Hybrid
	for _, rp := range rebufferGrid {
		for _, sp := range switchGrid {
			algo := Hybrid{RebufferPenalty: rp, SwitchPenalty: sp, ChunkSec: cfg.ChunkSec}
			var sum float64
			for _, tr := range traces {
				m, err := Simulate(algo, tr, cfg)
				if err != nil {
					return Hybrid{}, 0, err
				}
				sum += objective.Eval(space.Clamp(m.Scenario()))
			}
			if score := sum / float64(len(traces)); score > bestScore {
				bestScore, best = score, algo
			}
		}
	}
	return best, bestScore, nil
}

// Sessions simulates every algorithm over every trace and returns the
// metric scenarios — the comparison pool the synthesizer draws QoE
// preference queries from.
func Sessions(algos []Algorithm, traces []*Trace, cfg Config) ([]Metrics, error) {
	var out []Metrics
	for _, a := range algos {
		for _, tr := range traces {
			m, err := Simulate(a, tr, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}
