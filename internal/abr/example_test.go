package abr_test

import (
	"fmt"

	"compsynth/internal/abr"
)

func ExampleSimulate() {
	// A buffer-based player on a steady 3 Mbps link.
	m, err := abr.Simulate(abr.BufferBased{}, abr.Constant(3), abr.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("rebuffered:", m.RebufferRatio > 0)
	fmt.Println("bitrate within link rate:", m.AvgBitrateMbps <= 3)
	// Output:
	// rebuffered: false
	// bitrate within link rate: true
}
