package abr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := [][]TraceSample{
		{{Duration: 0, Mbps: 1}},
		{{Duration: -1, Mbps: 1}},
		{{Duration: 1, Mbps: 0}},
		{{Duration: 1, Mbps: -2}},
		{{Duration: math.NaN(), Mbps: 1}},
		{{Duration: 1, Mbps: math.Inf(1)}},
	}
	for i, s := range bad {
		if _, err := NewTrace(s); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestDownloadTimeConstant(t *testing.T) {
	tr := Constant(4) // 4 Mbps
	// 8 Mb at 4 Mbps = 2s.
	if got := tr.downloadTime(0, 8); math.Abs(got-2) > 1e-9 {
		t.Errorf("downloadTime = %v, want 2", got)
	}
	// Offset start doesn't matter on a constant trace.
	if got := tr.downloadTime(100, 8); math.Abs(got-2) > 1e-9 {
		t.Errorf("offset downloadTime = %v", got)
	}
}

func TestDownloadTimeAcrossSegments(t *testing.T) {
	tr := MustNewTrace([]TraceSample{
		{Duration: 1, Mbps: 10}, // 10 Mb available in first second
		{Duration: 10, Mbps: 1},
	})
	// 12 Mb: 10 in 1s, then 2 at 1 Mbps = 2s -> total 3s.
	if got := tr.downloadTime(0, 12); math.Abs(got-3) > 1e-9 {
		t.Errorf("cross-segment downloadTime = %v, want 3", got)
	}
}

func TestDownloadTimeWraps(t *testing.T) {
	tr := MustNewTrace([]TraceSample{{Duration: 1, Mbps: 1}})
	// 5 Mb at 1 Mbps with a 1s trace that wraps: 5s.
	if got := tr.downloadTime(0.5, 5); math.Abs(got-5) > 1e-9 {
		t.Errorf("wrapped downloadTime = %v, want 5", got)
	}
}

func TestBandwidthAt(t *testing.T) {
	tr := MustNewTrace([]TraceSample{
		{Duration: 2, Mbps: 10},
		{Duration: 3, Mbps: 1},
	})
	cases := []struct{ at, want float64 }{
		{0, 10}, {1.9, 10}, {2, 1}, {4.9, 1}, {5, 10}, {7.5, 1},
	}
	for _, c := range cases {
		if got := tr.bandwidthAt(c.at); got != c.want {
			t.Errorf("bandwidthAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestTraceGenerators(t *testing.T) {
	rw := RandomWalk(50, 2, 3, 0.3, 8, rand.New(rand.NewSource(1)))
	for _, s := range rw.samples {
		if s.Mbps < 0.3-1e-12 || s.Mbps > 8+1e-12 {
			t.Errorf("random walk escaped bounds: %v", s.Mbps)
		}
	}
	// Deterministic per seed.
	rw2 := RandomWalk(50, 2, 3, 0.3, 8, rand.New(rand.NewSource(1)))
	for i := range rw.samples {
		if rw.samples[i] != rw2.samples[i] {
			t.Fatal("RandomWalk not deterministic")
		}
	}
	st := Stepped(5, 1, 10, 3)
	if len(st.samples) != 6 {
		t.Errorf("stepped samples = %d", len(st.samples))
	}
	if st.samples[0].Mbps != 5 || st.samples[1].Mbps != 1 {
		t.Error("stepped pattern wrong")
	}
}

func TestRateBasedChoice(t *testing.T) {
	a := RateBased{Safety: 1.0}
	st := PlayerState{ThroughputMbps: 2.0, Ladder: DefaultLadder, LastIndex: -1}
	got := a.Choose(st)
	if DefaultLadder[got] > 2.0 {
		t.Errorf("rate-based chose %v above estimate", DefaultLadder[got])
	}
	if got != 2 { // 1.2 is the highest <= 2.0
		t.Errorf("choice = %d, want 2", got)
	}
	// No estimate -> lowest.
	if a.Choose(PlayerState{Ladder: DefaultLadder}) != 0 {
		t.Error("no estimate should pick lowest")
	}
	// Safety discount.
	safe := RateBased{Safety: 0.5}
	if safe.Choose(st) != 1 { // 2*0.5 = 1.0 -> 0.75
		t.Errorf("safety choice = %d", safe.Choose(st))
	}
}

func TestBufferBasedChoice(t *testing.T) {
	a := BufferBased{ReservoirSec: 5, CushionSec: 20}
	lad := DefaultLadder
	if a.Choose(PlayerState{BufferSec: 2, Ladder: lad}) != 0 {
		t.Error("below reservoir should pick lowest")
	}
	if a.Choose(PlayerState{BufferSec: 25, Ladder: lad}) != len(lad)-1 {
		t.Error("above cushion should pick highest")
	}
	mid := a.Choose(PlayerState{BufferSec: 12.5, Ladder: lad})
	if mid <= 0 || mid >= len(lad)-1 {
		t.Errorf("midpoint choice = %d", mid)
	}
	// Monotone in buffer.
	prev := -1
	for b := 0.0; b <= 30; b += 1 {
		c := a.Choose(PlayerState{BufferSec: b, Ladder: lad})
		if c < prev {
			t.Fatalf("buffer-based not monotone at %v", b)
		}
		prev = c
	}
}

func TestHybridChoice(t *testing.T) {
	a := Hybrid{}
	// Plenty of estimate and buffer: go high.
	hi := a.Choose(PlayerState{ThroughputMbps: 10, BufferSec: 20, LastIndex: -1, Ladder: DefaultLadder})
	if DefaultLadder[hi] < 2 {
		t.Errorf("hybrid with headroom chose %v", DefaultLadder[hi])
	}
	// No estimate: lowest.
	if a.Choose(PlayerState{Ladder: DefaultLadder}) != 0 {
		t.Error("hybrid without estimate should pick lowest")
	}
	// Tiny buffer and weak link: prefer low bitrate.
	lo := a.Choose(PlayerState{ThroughputMbps: 0.5, BufferSec: 0.5, LastIndex: 4, Ladder: DefaultLadder})
	if DefaultLadder[lo] > 1.5 {
		t.Errorf("hybrid under pressure chose %v", DefaultLadder[lo])
	}
}

func TestSimulateFastLink(t *testing.T) {
	// 50 Mbps: every algorithm should reach the top rung with no
	// rebuffering.
	tr := Constant(50)
	for _, algo := range []Algorithm{RateBased{}, BufferBased{}, Hybrid{}} {
		m, err := Simulate(algo, tr, Config{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if m.RebufferRatio > 1e-9 {
			t.Errorf("%s rebuffered on a fast link: %v", algo.Name(), m.RebufferRatio)
		}
		if m.AvgBitrateMbps < 2 {
			t.Errorf("%s bitrate only %v on 50 Mbps", algo.Name(), m.AvgBitrateMbps)
		}
		if m.StartupSec <= 0 {
			t.Errorf("%s zero startup", algo.Name())
		}
	}
}

func TestSimulateSlowLinkLimitsBitrate(t *testing.T) {
	tr := Constant(0.5)
	m, err := Simulate(RateBased{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgBitrateMbps > 0.6 {
		t.Errorf("bitrate %v on a 0.5 Mbps link", m.AvgBitrateMbps)
	}
}

func TestSimulateGreedyRebuffersOnSteppedTrace(t *testing.T) {
	// A pathological greedy algorithm (always top bitrate) must
	// rebuffer on a trace that dips below the top rate.
	tr := Stepped(6, 0.6, 20, 5)
	m, err := Simulate(greedy{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.RebufferRatio <= 0 {
		t.Error("greedy algorithm did not rebuffer on stepped trace")
	}
	// A buffer-based player handles the same trace with less stalling.
	mb, err := Simulate(BufferBased{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mb.RebufferRatio >= m.RebufferRatio {
		t.Errorf("buffer-based (%v) not better than greedy (%v)", mb.RebufferRatio, m.RebufferRatio)
	}
}

type greedy struct{}

func (greedy) Name() string             { return "greedy" }
func (greedy) Choose(s PlayerState) int { return len(s.Ladder) - 1 }

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, Constant(1), Config{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Simulate(RateBased{}, nil, Config{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Simulate(badAlgo{}, Constant(1), Config{}); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

type badAlgo struct{}

func (badAlgo) Name() string           { return "bad" }
func (badAlgo) Choose(PlayerState) int { return 99 }

func TestSimulateMetricsInSpace(t *testing.T) {
	sp := Space()
	rng := rand.New(rand.NewSource(3))
	traces := []*Trace{
		Constant(3),
		Stepped(5, 0.8, 15, 4),
		RandomWalk(60, 3, 2, 0.3, 8, rng),
	}
	algos := []Algorithm{RateBased{}, BufferBased{}, Hybrid{}}
	ms, err := Sessions(algos, traces, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 9 {
		t.Fatalf("sessions = %d", len(ms))
	}
	for _, m := range ms {
		sc := m.Scenario()
		if !sp.Contains(sp.Clamp(sc)) {
			t.Fatalf("clamped scenario outside space: %v", sc)
		}
		if m.RebufferRatio < 0 || m.RebufferRatio >= 1 {
			t.Errorf("rebuffer ratio %v out of range", m.RebufferRatio)
		}
		if m.AvgBitrateMbps < DefaultLadder[0] || m.AvgBitrateMbps > DefaultLadder[len(DefaultLadder)-1] {
			t.Errorf("avg bitrate %v outside ladder", m.AvgBitrateMbps)
		}
	}
}

func TestQoESketchShape(t *testing.T) {
	sk := QoESketch()
	if sk.NumHoles() != 4 {
		t.Errorf("QoE sketch holes = %v", sk.Holes())
	}
	// A candidate scoring: 2*bitrate - 8*rebuffer - 1*switches - 0.5*startup.
	m := map[string]float64{"w_bitrate": 2, "w_rebuffer": 8, "w_switches": 1, "w_startup": 0.5}
	holes := make([]float64, sk.NumHoles())
	for i, h := range sk.Holes() {
		holes[i] = m[h]
	}
	c := sk.MustCandidate(holes)
	got := c.Eval([]float64{3, 0.1, 2, 1})
	want := 2*3 - 8*0.1 - 1*2 - 0.5*1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("QoE eval = %v, want %v", got, want)
	}
}

func TestBOLAChoice(t *testing.T) {
	a := BOLA{}
	st := PlayerState{Ladder: DefaultLadder, ChunkSec: 4, LastIndex: -1}
	// Empty buffer: conservative (bottom half of the ladder).
	st.BufferSec = 0
	if c := a.Choose(st); DefaultLadder[c] > 1.5 {
		t.Errorf("BOLA with empty buffer chose %v", DefaultLadder[c])
	}
	// Buffer at target: top rung.
	st.BufferSec = 25
	if c := a.Choose(st); c != len(DefaultLadder)-1 {
		t.Errorf("BOLA at target buffer chose index %d", c)
	}
	// Monotone non-decreasing in buffer level.
	prev := -1
	for b := 0.0; b <= 30; b += 0.5 {
		st.BufferSec = b
		c := a.Choose(st)
		if c < prev {
			t.Fatalf("BOLA not monotone at buffer %v", b)
		}
		prev = c
	}
}

func TestBOLADefaultsWithoutChunkSec(t *testing.T) {
	// Zero ChunkSec (caller outside Simulate) must not panic.
	a := BOLA{}
	c := a.Choose(PlayerState{Ladder: DefaultLadder, BufferSec: 10})
	if c < 0 || c >= len(DefaultLadder) {
		t.Errorf("choice %d out of range", c)
	}
}

func TestBOLASimulates(t *testing.T) {
	m, err := Simulate(BOLA{}, Constant(50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.RebufferRatio > 1e-9 {
		t.Errorf("BOLA rebuffered on fast link: %v", m.RebufferRatio)
	}
	if m.AvgBitrateMbps < 2 {
		t.Errorf("BOLA bitrate %v on 50 Mbps", m.AvgBitrateMbps)
	}
	// Stress trace: BOLA must beat the greedy strawman on rebuffering.
	tr := Stepped(6, 0.6, 20, 5)
	mb, err := Simulate(BOLA{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := Simulate(greedy{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mb.RebufferRatio >= mg.RebufferRatio {
		t.Errorf("BOLA (%v) not better than greedy (%v)", mb.RebufferRatio, mg.RebufferRatio)
	}
}

func TestPlayerStateCarriesChunkSec(t *testing.T) {
	probe := &chunkSecProbe{}
	if _, err := Simulate(probe, Constant(10), Config{ChunkSec: 6, NumChunks: 3}); err != nil {
		t.Fatal(err)
	}
	if probe.seen != 6 {
		t.Errorf("ChunkSec in state = %v, want 6", probe.seen)
	}
}

type chunkSecProbe struct{ seen float64 }

func (c *chunkSecProbe) Name() string { return "probe" }
func (c *chunkSecProbe) Choose(s PlayerState) int {
	c.seen = s.ChunkSec
	return 0
}

func TestTuneHybrid(t *testing.T) {
	sk := QoESketch()
	// A rebuffer-phobic viewer.
	m := map[string]float64{"w_bitrate": 2, "w_rebuffer": 18, "w_switches": 0.5, "w_startup": 0.3}
	holes := make([]float64, sk.NumHoles())
	for i, h := range sk.Holes() {
		holes[i] = m[h]
	}
	objective := sk.MustCandidate(holes)
	traces := []*Trace{
		Stepped(5, 0.7, 20, 4),
		Constant(2),
	}
	tuned, score, err := TuneHybrid(objective, traces, Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tuned configuration must beat the package default under this
	// objective (or tie if the default happens to be on the grid).
	var defScore float64
	for _, tr := range traces {
		mm, err := Simulate(Hybrid{}, tr, Config{})
		if err != nil {
			t.Fatal(err)
		}
		defScore += objective.Eval(sk.Space().Clamp(mm.Scenario()))
	}
	defScore /= float64(len(traces))
	if score < defScore-1e-9 {
		t.Errorf("tuned score %v below default %v", score, defScore)
	}
	if tuned.RebufferPenalty == 0 {
		t.Error("tuned penalties zero")
	}
}

func TestTuneHybridValidation(t *testing.T) {
	sk := QoESketch()
	objective := sk.MustCandidate(make([]float64, sk.NumHoles()))
	if _, _, err := TuneHybrid(objective, nil, Config{}, nil, nil); err == nil {
		t.Error("no traces accepted")
	}
}

func TestParseTraceTwoColumn(t *testing.T) {
	src := `
# test trace
2 10
3 1.5
`
	tr, err := ParseTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.samples) != 2 {
		t.Fatalf("samples = %d", len(tr.samples))
	}
	if tr.samples[0] != (TraceSample{Duration: 2, Mbps: 10}) {
		t.Errorf("sample 0 = %+v", tr.samples[0])
	}
}

func TestParseTraceSingleColumn(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("5\n3\n1.2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.samples) != 3 {
		t.Fatalf("samples = %d", len(tr.samples))
	}
	for _, s := range tr.samples {
		if s.Duration != 1 {
			t.Errorf("single-column duration = %v, want 1", s.Duration)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"",      // empty
		"1 2 3", // too many columns
		"x 2",   // bad duration
		"2 y",   // bad bandwidth
		"1 0",   // zero bandwidth rejected by NewTrace
		"-1 2",  // negative duration
	}
	for _, src := range bad {
		if _, err := ParseTrace(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	orig := Stepped(5, 1, 10, 3)
	var buf strings.Builder
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.samples) != len(orig.samples) {
		t.Fatalf("round trip changed sample count")
	}
	for i := range back.samples {
		if back.samples[i] != orig.samples[i] {
			t.Fatalf("sample %d changed: %+v vs %+v", i, back.samples[i], orig.samples[i])
		}
	}
}
