package abr

import (
	"math/rand"
	"testing"
)

func BenchmarkSimulateSession(b *testing.B) {
	tr := RandomWalk(120, 3, 2.5, 0.4, 8, rand.New(rand.NewSource(1)))
	algos := []Algorithm{RateBased{}, BufferBased{}, BOLA{}, Hybrid{}}
	for _, a := range algos {
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(a, tr, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
