package fleet

// The router proper: the routing table, the reverse proxy for the /v1
// session API, and the admin/health surface. One routing entry per
// session tracks the owning member, the in-flight request count (so
// migration can drain), and the learned-tier bookkeeping (sketch name,
// answer count, last warm generation).

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"compsynth/internal/obs"
	"compsynth/internal/service"
)

// maxProxyBody bounds buffered request/response bodies. Transcripts are
// the largest payload and share the daemon's own 16MB import cap.
const maxProxyBody = 32 << 20

// route is one session's routing entry.
type route struct {
	id string

	mu       sync.Mutex
	owner    string // member name
	inflight int
	// draining gates new traffic during migration. unblocked is closed
	// whenever the route is open; drain start swaps in a fresh channel
	// that drain end closes, so waiters just block on the snapshot they
	// read. drained is closed when the last in-flight request leaves.
	draining  bool
	unblocked chan struct{}
	drained   chan struct{}

	answers   int
	sketch    string
	warmGen   uint64
	warming   bool
	harvested bool
	lastSeen  time.Time
}

// Router fronts the fleet: it owns the member set, the routing table,
// and the shared learned tier.
type Router struct {
	cfg     Config
	client  *http.Client
	log     *obs.Logger
	met     *metrics
	learned *learnedStore
	nonce   string

	mu          sync.Mutex
	members     map[string]*member
	memberOrder []string
	routes      map[string]*route
	idSeq       uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a router. With MemberFile set the file is read once here
// (missing files are tolerated: the watcher picks the file up when it
// appears) and watched thereafter; otherwise cfg.Members is the static
// member set.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	nonce := make([]byte, 3)
	rand.Read(nonce) //nolint:errcheck // crypto/rand.Read never fails on supported platforms
	r := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		log:     cfg.Obs.Log(),
		learned: newLearnedStore(cfg.LearnedCap),
		nonce:   hex.EncodeToString(nonce),
		members: make(map[string]*member),
		routes:  make(map[string]*route),
		stop:    make(chan struct{}),
	}
	if cfg.Log != nil {
		r.log = cfg.Log
	}
	r.met = newMetrics(cfg.Obs.Reg(), r.learned)
	initial := cfg.Members
	if cfg.MemberFile != "" {
		if ms, err := ReadMemberFile(cfg.MemberFile); err == nil {
			initial = ms
		} else if len(initial) == 0 {
			r.log.Warn("fleet.memberfile.initial", "path", cfg.MemberFile, "error", err.Error())
		}
	}
	if err := r.SetMembers(initial); err != nil {
		return nil, err
	}
	r.wg.Add(1)
	go r.healthLoop()
	if cfg.MemberFile != "" {
		r.wg.Add(1)
		go r.watchLoop()
	}
	return r, nil
}

// Close stops the background loops. In-flight proxied requests finish
// on their own; sessions stay on their members.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Handler builds the router's HTTP surface: the forwarded /v1 session
// API, the admin API, health endpoints, and (with an observer) the obs
// exposition routes — all wrapped in the same correlation middleware
// the daemon uses, so an X-Request-Id minted here (or sent by the
// client) appears verbatim in the member's access log too.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", r.handleCreate)
	mux.HandleFunc("GET /v1/sessions", r.handleList)
	mux.HandleFunc("/v1/sessions/{id}", r.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{verb...}", r.handleSession)
	mux.HandleFunc("POST /v1/admin/migrate", r.handleMigrate)
	mux.HandleFunc("GET /v1/admin/members", r.handleMembers)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.mu.Lock()
		n := len(r.placeableLocked())
		r.mu.Unlock()
		if n == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "no healthy members")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if o := r.cfg.Obs; o != nil {
		obs.MountAll(mux, o.Reg(), o.Trace())
	}
	return service.Correlate(mux, r.log)
}

// apiError mirrors the daemon's JSON error body so router-originated
// failures are indistinguishable in shape from member-originated ones.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// timeoutContext is context.WithTimeout that also cancels on stop, so
// shutdown interrupts probes and control calls promptly.
func timeoutContext(stop <-chan struct{}, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// nextID mints a fleet-unique session ID: a per-process nonce (so a
// restarted router cannot re-issue the IDs of sessions that still
// live on members) plus a sequence number.
func (r *Router) nextID() string {
	r.mu.Lock()
	r.idSeq++
	n := r.idSeq
	r.mu.Unlock()
	return "f" + r.nonce + "-" + strconv.FormatUint(n, 10)
}

// routeFor returns the session's routing entry, or nil.
func (r *Router) routeFor(id string) *route {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routes[id]
}

// setRoute installs (or re-owners) a routing entry.
func (r *Router) setRoute(id, owner string) *route {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.routes[id]
	if rt == nil {
		rt = &route{id: id, unblocked: make(chan struct{})}
		close(rt.unblocked)
		r.routes[id] = rt
	}
	rt.mu.Lock()
	rt.owner = owner
	rt.lastSeen = time.Now()
	rt.mu.Unlock()
	return rt
}

func (r *Router) dropRoute(id string) {
	r.mu.Lock()
	delete(r.routes, id)
	r.mu.Unlock()
}

// sweepRoutes evicts idle entries past RouteTTL; the probe path
// rebuilds them on demand if the session still exists somewhere.
func (r *Router) sweepRoutes() {
	cutoff := time.Now().Add(-r.cfg.RouteTTL)
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, rt := range r.routes {
		rt.mu.Lock()
		stale := rt.inflight == 0 && !rt.draining && rt.lastSeen.Before(cutoff)
		rt.mu.Unlock()
		if stale {
			delete(r.routes, id)
		}
	}
}

// memberByName resolves a member, nil when unknown.
func (r *Router) memberByName(name string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[name]
}

// begin admits one request onto the route, blocking while a migration
// drain is in progress (the flip is quick: drain + bundle + import).
func (rt *route) begin(ctx context.Context) error {
	for {
		rt.mu.Lock()
		if !rt.draining {
			rt.inflight++
			rt.lastSeen = time.Now()
			rt.mu.Unlock()
			return nil
		}
		ch := rt.unblocked
		rt.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (rt *route) end() {
	rt.mu.Lock()
	rt.inflight--
	if rt.draining && rt.inflight == 0 && rt.drained != nil {
		close(rt.drained)
		rt.drained = nil
	}
	rt.mu.Unlock()
}

// forward relays one request to a member and buffers the response.
// Correlation headers travel with the inbound header set; the resolved
// X-Request-Id/Traceparent from the correlate middleware (already on
// the response header map) override them so IDs minted at the router
// reach the member.
func (r *Router) forward(req *http.Request, respHeader http.Header, m *member, body []byte) (*http.Response, []byte, error) {
	u := m.URL + req.URL.EscapedPath()
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, u, rd)
	if err != nil {
		return nil, nil, err
	}
	out.Header = req.Header.Clone()
	if id := respHeader.Get("X-Request-Id"); id != "" {
		out.Header.Set("X-Request-Id", id)
	}
	if tp := respHeader.Get("Traceparent"); tp != "" {
		out.Header.Set("Traceparent", tp)
	}
	resp, err := r.client.Do(out)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, nil, err
	}
	r.met.proxied.Inc()
	return resp, raw, nil
}

// relay copies a buffered member response back to the client.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	h := w.Header()
	for k, vs := range resp.Header {
		// The correlate middleware already owns the correlation pair on
		// this response; the member echoes the same values anyway.
		if k == "X-Request-Id" || k == "Traceparent" {
			continue
		}
		h[k] = vs
	}
	h.Del("Content-Length") // body was re-buffered
	w.WriteHeader(resp.StatusCode)
	w.Write(body) //nolint:errcheck // client went away
}

func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "read body: " + err.Error()})
		return
	}
	// Decode generically so unknown spec fields survive the round trip.
	var spec map[string]any
	if err := json.Unmarshal(raw, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec: " + err.Error()})
		return
	}
	id, _ := spec["id"].(string)
	minted := false
	if id == "" {
		id = r.nextID()
		spec["id"] = id
		minted = true
	}
	r.mu.Lock()
	ranked := rank(r.placeableLocked(), id)
	r.mu.Unlock()
	if len(ranked) == 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "fleet: no healthy members"})
		return
	}
	owner := ranked[0]
	// Inject the replica set — ranks 1..Replicas-1 of the same
	// rendezvous ordering that picked the owner — unless the client
	// pinned its own (DESIGN.md §16). The replication factor is a
	// floor, not best effort: a create the fleet cannot replicate R
	// ways right now is refused (retryable 503) rather than silently
	// confirmed with a lone copy that a single member death would
	// destroy.
	injected := false
	if _, has := spec["replicas"]; !has && r.cfg.Replicas > 1 {
		if len(ranked) < r.cfg.Replicas {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: fmt.Sprintf(
				"fleet: replication factor %d needs %d healthy members (%d available)",
				r.cfg.Replicas, r.cfg.Replicas, len(ranked))})
			return
		}
		var reps []Member
		for _, m := range ranked[1:] {
			if len(reps) == r.cfg.Replicas-1 {
				break
			}
			reps = append(reps, m.Member)
		}
		spec["replicas"] = reps
		injected = true
	}
	if minted || injected {
		if raw, err = json.Marshal(spec); err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
	}
	rt := r.setRoute(id, owner.Name)
	if err := rt.begin(req.Context()); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "fleet: " + err.Error()})
		return
	}
	defer rt.end()
	resp, body, err := r.forward(req, w.Header(), owner, raw)
	if err != nil {
		r.met.proxyErrors.Inc()
		r.dropRoute(id)
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: " + owner.Name + ": " + err.Error()})
		return
	}
	// Keep the route on 2xx and on 409 (the session already exists on
	// that member — the route is right, the create was a replay).
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
		r.dropRoute(id)
	}
	relay(w, resp, body)
	r.log.Info("fleet.create", "session", id, "member", owner.Name, "status", resp.StatusCode)
}

// handleList fans the list out to every healthy member and merges.
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	ms := make([]*member, 0, len(r.members))
	for _, name := range r.memberOrder {
		if m := r.members[name]; m != nil && m.healthy.Load() {
			ms = append(ms, m)
		}
	}
	r.mu.Unlock()
	all := []service.SessionStatus{}
	for _, m := range ms {
		resp, body, err := r.forward(req, w.Header(), m, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			continue // partial lists beat failing the whole call
		}
		// The daemon wraps its list: {"sessions": [...]}; mirror it.
		var part struct {
			Sessions []service.SessionStatus `json:"sessions"`
		}
		if json.Unmarshal(body, &part) == nil {
			all = append(all, part.Sessions...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"sessions": all})
}

// handleSession proxies every per-session route to the owner, with
// probe-on-miss: an unknown session (router restart) or a stale owner
// (404 from the member) triggers a fleet-wide probe that rebuilds the
// routing entry before failing the request.
func (r *Router) handleSession(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	verb := req.PathValue("verb")
	var body []byte
	if req.Method == http.MethodPost || req.Method == http.MethodPut {
		var err error
		if body, err = io.ReadAll(io.LimitReader(req.Body, maxProxyBody)); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "read body: " + err.Error()})
			return
		}
	}
	rt := r.routeFor(id)
	if rt == nil {
		owner := r.probeForSession(req.Context(), id)
		if owner == nil {
			// Last resort: no member owns the session, but a surviving
			// replica copy might (a router restart that raced an owner
			// death). Adoption is idempotent-by-epoch, so probing it here
			// is safe even if a health-triggered scan runs concurrently.
			owner = r.adoptOrphan(id)
		}
		if owner == nil {
			writeJSON(w, http.StatusNotFound, apiError{Error: "fleet: unknown session " + id})
			return
		}
		rt = r.setRoute(id, owner.Name)
	}
	if err := rt.begin(req.Context()); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "fleet: " + err.Error()})
		return
	}
	defer rt.end()
	rt.mu.Lock()
	ownerName := rt.owner
	rt.mu.Unlock()
	owner := r.memberByName(ownerName)
	if owner == nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "fleet: owner " + ownerName + " left the fleet"})
		return
	}
	resp, raw, err := r.forward(req, w.Header(), owner, body)
	if err != nil {
		r.met.proxyErrors.Inc()
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: " + ownerName + ": " + err.Error()})
		return
	}
	if resp.StatusCode == http.StatusNotFound {
		// Stale route (the session moved behind our back, e.g. a prior
		// router instance migrated it). Re-probe and retry once.
		if rescued := r.probeForSession(req.Context(), id); rescued != nil && rescued.Name != ownerName {
			r.met.probeRescue.Inc()
			r.setRoute(id, rescued.Name)
			r.log.Info("fleet.route.rescued", "session", id, "member", rescued.Name)
			if resp2, raw2, err2 := r.forward(req, w.Header(), rescued, body); err2 == nil {
				resp, raw = resp2, raw2
			}
		}
	}
	relay(w, resp, raw)
	r.afterProxy(rt, req.Method, verb, resp.StatusCode, raw)
}

// probeForSession asks every member for the session's status and
// returns whichever owns it (nil when none).
func (r *Router) probeForSession(ctx context.Context, id string) *member {
	r.mu.Lock()
	ms := make([]*member, 0, len(r.members))
	for _, name := range r.memberOrder {
		if m := r.members[name]; m != nil && m.healthy.Load() {
			ms = append(ms, m)
		}
	}
	r.mu.Unlock()
	for _, m := range ms {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/sessions/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return m
		}
	}
	return nil
}

// afterProxy is the learned-tier hook on the response path: it counts
// accepted answers toward the warm schedule, and harvests the session's
// learned summary once it finishes or is deleted.
func (r *Router) afterProxy(rt *route, method, verb string, status int, body []byte) {
	if status >= 300 {
		if method == http.MethodDelete && status == http.StatusNotFound {
			r.dropRoute(rt.id)
		}
		return
	}
	switch {
	case method == http.MethodDelete && verb == "":
		r.dropRoute(rt.id)
		return
	case method == http.MethodPost && verb == "answer",
		method == http.MethodPost && verb == "judgments",
		method == http.MethodGet && verb == "query",
		method == http.MethodGet && verb == "queries":
	default:
		return
	}
	var qr struct {
		State string `json:"state"`
		// Accepted is the batch judgments route's applied count; the
		// single answer route always applies exactly one.
		Accepted int `json:"accepted"`
	}
	if json.Unmarshal(body, &qr) != nil {
		return
	}
	rt.mu.Lock()
	applied := 0
	if method == http.MethodPost {
		applied = 1
		if verb == "judgments" {
			applied = qr.Accepted
		}
		rt.answers += applied
	}
	finished := qr.State == "done" || qr.State == "failed"
	wantHarvest := finished && !rt.harvested
	if wantHarvest {
		rt.harvested = true
	}
	// A batch may step over the exact warm multiple, so warm whenever
	// this POST crossed a WarmInterval boundary rather than landed on it.
	wantWarm := !finished && r.cfg.WarmInterval > 0 && !rt.warming &&
		applied > 0 && rt.answers/r.cfg.WarmInterval > (rt.answers-applied)/r.cfg.WarmInterval
	if wantWarm {
		rt.warming = true
	}
	rt.mu.Unlock()
	if wantHarvest {
		r.wg.Add(1)
		go r.harvestRoute(rt)
	}
	if wantWarm {
		r.wg.Add(1)
		go r.warmRoute(rt)
	}
}

func (r *Router) handleMembers(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Members())
}

// migrateRequest is the admin migration body. Target is optional: empty
// re-picks by rendezvous among the placeable members excluding the
// current owner.
type migrateRequest struct {
	Session string `json:"session"`
	Target  string `json:"target,omitempty"`
}

type migrateResponse struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
}

func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	var mr migrateRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&mr); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	if mr.Session == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing session"})
		return
	}
	from, to, err := r.Migrate(req.Context(), mr.Session, mr.Target)
	if err != nil {
		status := http.StatusBadGateway
		switch {
		case errors.Is(err, errUnknownSession):
			status = http.StatusNotFound
		case errors.Is(err, errNotMigratable), errors.Is(err, errMigrating):
			status = http.StatusConflict
		case errors.Is(err, errNoTarget):
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, migrateResponse{Session: mr.Session, From: from, To: to})
}
