// Package fleet shards compsynthd into a multi-node synthesis tier: a
// session-routing reverse proxy (cmd/compsynth-router) in front of N
// compsynthd processes. Sessions are placed by rendezvous hashing over
// the healthy members, every /v1 session route is forwarded to the
// owning daemon with the correlation headers (X-Request-Id,
// Traceparent) preserved end-to-end, and sessions move between members
// by live migration: drain the session's traffic at the router, export
// its migration bundle (spec + partial transcript + learned summary)
// from the old owner, re-create and import it on the new owner, then
// flip the routing entry. Migration is triggered by the admin API
// (POST /v1/admin/migrate) and automatically when a member leaves the
// watched member file while still healthy.
//
// The router also maintains the fleet's shared learned tier: finished
// sessions' learned-prune summaries are harvested and merged per
// sketch, and active sessions are periodically warmed with the merged
// summary (PUT /v1/sessions/{id}/learned). Warming is advisory by
// construction — the receiving daemon re-proves every region against
// the session's own constraints and skips the rest — so one tenant's
// refutations can speed every replica up but can never change any
// session's answers, which is what keeps fleet transcripts
// bit-identical to single-process batch runs (the invariance
// cmd/synthload asserts under chaos).
//
// Sessions are replicated for failover (DESIGN.md §16): at create time
// the router injects a replica set — the next Replicas-1 members in
// the session's rendezvous ranking — into the spec, and the owning
// daemon pushes every fsynced journal record to those members before
// confirming the triggering request. When the health checker sees an
// owner fail FailoverAfter consecutive probes, the router drains the
// dead owner's routes and adopts each session on the best surviving
// replica copy (highest epoch, then most records, then rendezvous
// rank): losing copies are fenced at the new epoch, the winner replays
// its copy through the deterministic-replay restore path, and the
// route flips. Epoch fencing makes the old owner a zombie — any later
// push it attempts is rejected and it destroys its stale copy.
//
// Failure handling in one line each: an unhealthy member's sessions
// fail over to their replicas after FailoverAfter missed probes (and
// until then answer 502/503, which well-behaved clients retry), a
// departed-but-healthy member is drained by migration, and a router
// restart recovers the routing table lazily by probing members for
// sessions it cannot place — including, as a last resort, adopting
// from a surviving replica copy when no member owns the session.
package fleet

import (
	"net/http"
	"time"

	"compsynth/internal/obs"
)

// Member is one compsynthd process in the fleet.
type Member struct {
	// Name is the stable identity rendezvous hashing scores; changing a
	// member's name reshuffles the sessions it would be assigned.
	Name string `json:"name"`
	// URL is the member's base URL (scheme://host:port).
	URL string `json:"url"`
}

// Config tunes the router.
type Config struct {
	// Members seeds the member set. With MemberFile set the file wins
	// as soon as it is first read.
	Members []Member
	// MemberFile, when non-empty, is a watched membership file: one
	// "name url" pair per line ('#' comments). Removing a line while
	// the member is healthy triggers automatic drain-by-migration of
	// its live sessions; adding a line joins the member for new
	// placements.
	MemberFile string
	// WatchInterval is the member-file poll period (default 1s).
	WatchInterval time.Duration
	// HealthInterval is the /readyz probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// MigrateTimeout bounds one migration end to end, drain included
	// (default 60s).
	MigrateTimeout time.Duration
	// DrainRetry is the backoff between bundle-export attempts while
	// the old owner's session is mid-step (default 50ms; the daemon's
	// Retry-After, when longer, wins).
	DrainRetry time.Duration
	// LearnedCap bounds the shared learned tier's region count per
	// sketch (default 4096; oldest evicted first).
	LearnedCap int
	// WarmInterval is how often active sessions are re-warmed from the
	// shared learned tier, counted in accepted answers: after every
	// WarmInterval-th answer the router schedules a warm if the tier
	// has new regions for the session's sketch (default 2; <0
	// disables warming).
	WarmInterval int
	// RouteTTL evicts routing entries untouched for this long; the
	// probe path rebuilds them on demand (default 1h).
	RouteTTL time.Duration
	// Replicas is the total number of journal copies per session, owner
	// included: the router injects the next Replicas-1 members of the
	// session's rendezvous ranking as its replica set at create time
	// (default 2; 1 disables replication and failover adoption).
	Replicas int
	// FailoverAfter is how many consecutive failed health probes
	// declare an owner dead and trigger failover adoption of its
	// sessions (default 2; <0 disables the automatic trigger — the
	// probe-on-miss adoption fallback still works).
	FailoverAfter int
	// Obs receives fleet metrics and spans (nil disables).
	Obs *obs.Observer
	// Log receives structured operational events (nil disables).
	Log *obs.Logger
	// Client is the HTTP client used for proxying and control calls
	// (nil builds one with sane keep-alive defaults and no global
	// timeout — long-polls are bounded by the inbound request's
	// context).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.WatchInterval <= 0 {
		c.WatchInterval = time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 60 * time.Second
	}
	if c.DrainRetry <= 0 {
		c.DrainRetry = 50 * time.Millisecond
	}
	if c.LearnedCap <= 0 {
		c.LearnedCap = 4096
	}
	if c.WarmInterval == 0 {
		c.WarmInterval = 2
	}
	if c.RouteTTL <= 0 {
		c.RouteTTL = time.Hour
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.FailoverAfter == 0 {
		c.FailoverAfter = 2
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 32
		c.Client = &http.Client{Transport: tr}
	}
	return c
}
