package fleet

import (
	"compsynth/internal/obs"
)

// metrics is the router's instrument set. Built over a nil registry
// every field is a nil instrument whose methods are no-ops, so an
// unobserved router pays nothing (the obs package's contract).
type metrics struct {
	members         *obs.Gauge
	memberUnhealthy *obs.Gauge

	proxied     *obs.Counter
	proxyErrors *obs.Counter
	probeRescue *obs.Counter

	migrations        *obs.Counter
	migrationFailures *obs.Counter
	migrateSeconds    *obs.Histogram

	adoptions        *obs.Counter
	adoptionFailures *obs.Counter
	adoptSeconds     *obs.Histogram

	learnedHarvested *obs.Counter
	learnedWarmed    *obs.Counter
}

func newMetrics(reg *obs.Registry, store *learnedStore) *metrics {
	m := &metrics{
		members: reg.Gauge("fleet_members",
			"Members currently in the routing set (departed included)."),
		memberUnhealthy: reg.Gauge("fleet_member_unhealthy",
			"Members whose last /readyz probe failed."),
		proxied: reg.Counter("fleet_proxied_requests_total",
			"Session API requests forwarded to a member."),
		proxyErrors: reg.Counter("fleet_proxy_errors_total",
			"Forwarded requests that failed at the transport (502 to the client)."),
		probeRescue: reg.Counter("fleet_probe_rescues_total",
			"Routing entries rebuilt by probing members (router restart or stale owner)."),
		migrations: reg.Counter("fleet_migrations_total",
			"Sessions migrated between members (admin-triggered or drain)."),
		migrationFailures: reg.Counter("fleet_migration_failures_total",
			"Migrations that aborted; the session stayed on its old owner."),
		migrateSeconds: reg.Histogram("fleet_migrate_seconds",
			"End-to-end migration latency, drain included.",
			obs.SecondsBuckets()),
		adoptions: reg.Counter("fleet_adoptions_total",
			"Sessions adopted from a replica copy after their owner died."),
		adoptionFailures: reg.Counter("fleet_adoption_failures_total",
			"Failover adoptions that found no promotable replica copy."),
		adoptSeconds: reg.Histogram("fleet_adopt_seconds",
			"End-to-end failover adoption latency per session.",
			obs.SecondsBuckets()),
		learnedHarvested: reg.Counter("fleet_learned_harvested_regions_total",
			"Refuted regions merged into the shared learned tier."),
		learnedWarmed: reg.Counter("fleet_learned_warm_pushes_total",
			"Warm pushes (PUT learned) delivered to member sessions."),
	}
	if reg != nil && store != nil {
		reg.GaugeFunc("fleet_learned_regions",
			"Refuted regions resident in the shared learned tier.",
			func() float64 { return float64(store.Len()) })
	}
	return m
}
