package fleet

// Fleet tests run real service managers behind httptest servers and a
// real router in front, so everything below exercises the same HTTP
// surface production does — only the listeners are in-process. The
// acceptance bar is the repo-wide one: every transcript fetched through
// the router must be bit-identical to the in-process batch run on the
// same spec, no matter how many times the session migrated mid-flight.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"compsynth/internal/core"
	"compsynth/internal/obs"
	"compsynth/internal/oracle"
	"compsynth/internal/scenario"
	"compsynth/internal/service"
	"compsynth/internal/sketch"
	"compsynth/internal/solver"
)

func testSpec(seed int64) service.SessionSpec {
	return service.SessionSpec{
		Seed:        seed,
		Solver:      &service.SolverSpec{Samples: 150, RepairRestarts: 5, RepairSteps: 60, Workers: 1},
		Distinguish: &service.DistinguishSpec{Candidates: 6, PairSamples: 250, Gamma: 2},
	}
}

func swanUser(t *testing.T) oracle.Oracle {
	t.Helper()
	cand, err := sketch.DefaultSWANTarget.Candidate(sketch.SWAN())
	if err != nil {
		t.Fatal(err)
	}
	return oracle.NewGroundTruth(cand, 1e-9)
}

// batchTranscript is the single-process reference run every fleet path
// must reproduce exactly.
func batchTranscript(t *testing.T, spec service.SessionSpec, user oracle.Oracle) []byte {
	t.Helper()
	res, err := service.BatchRun(spec, user)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := core.Export(res).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// daemonHandle is one in-process member.
type daemonHandle struct {
	name string
	dir  string
	mgr  *service.Manager
	srv  *httptest.Server
}

func newDaemon(t *testing.T, name string) *daemonHandle {
	t.Helper()
	dir := t.TempDir()
	m, err := service.New(service.Config{
		DataDir:         dir,
		Workers:         2,
		MaxSessions:     32,
		JanitorInterval: time.Hour,
		StepTimeout:     time.Minute,
		AcquireWait:     2 * time.Second,
		LongPollMax:     25 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.Handler(m))
	t.Cleanup(func() { srv.Close(); m.Abort() })
	return &daemonHandle{name: name, dir: dir, mgr: m, srv: srv}
}

func newFleet(t *testing.T, n int, tweak func(*Config)) (*Router, *httptest.Server, []*daemonHandle) {
	t.Helper()
	ds := make([]*daemonHandle, n)
	ms := make([]Member, n)
	for i := range ds {
		ds[i] = newDaemon(t, fmt.Sprintf("m%d", i+1))
		ms[i] = Member{Name: ds[i].name, URL: ds[i].srv.URL}
	}
	cfg := Config{
		Members:        ms,
		HealthInterval: 50 * time.Millisecond,
		WatchInterval:  50 * time.Millisecond,
		DrainRetry:     10 * time.Millisecond,
		Obs:            &obs.Observer{Registry: obs.NewRegistry()},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() { srv.Close(); r.Close() })
	return r, srv, ds
}

func createVia(t *testing.T, base string, spec service.SessionSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, raw)
	}
	var st service.SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

type queryResp struct {
	State string    `json:"state"`
	Seq   int       `json:"seq"`
	A     []float64 `json:"a"`
	B     []float64 `json:"b"`
	Error string    `json:"error"`
}

func prefWord(p oracle.Preference) string {
	switch p {
	case oracle.PrefersFirst:
		return "first"
	case oracle.PrefersSecond:
		return "second"
	}
	return "tie"
}

// drive answers a session's queries through the router until done (or
// maxAnswers), riding out the transient statuses chaos produces: 409
// answers are stale seqs after a migration (re-query), 503/502 are a
// member mid-restart, 408 is a long-poll expiry.
func drive(t *testing.T, base, id string, user oracle.Oracle, maxAnswers int) (int, bool) {
	t.Helper()
	client := &http.Client{Timeout: 60 * time.Second}
	answered := 0
	for tries := 0; tries < 4000; tries++ {
		resp, err := client.Get(base + "/v1/sessions/" + id + "/query?wait=20s")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusRequestTimeout, http.StatusTooManyRequests,
			http.StatusConflict, http.StatusServiceUnavailable, http.StatusBadGateway:
			time.Sleep(20 * time.Millisecond)
			continue
		default:
			t.Fatalf("query: %d %s", resp.StatusCode, raw)
		}
		var qr queryResp
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("decode query %q: %v", raw, err)
		}
		switch qr.State {
		case "awaiting_answer":
			if maxAnswers >= 0 && answered >= maxAnswers {
				return answered, false
			}
			pref := user.Compare(scenario.Scenario(qr.A), scenario.Scenario(qr.B))
			ab, _ := json.Marshal(map[string]any{"seq": qr.Seq, "pref": prefWord(pref)})
			ar, err := client.Post(base+"/v1/sessions/"+id+"/answer", "application/json", bytes.NewReader(ab))
			if err != nil {
				t.Fatal(err)
			}
			araw, _ := io.ReadAll(ar.Body)
			ar.Body.Close()
			switch ar.StatusCode {
			case http.StatusAccepted:
				answered++
			case http.StatusConflict, http.StatusTooManyRequests,
				http.StatusServiceUnavailable, http.StatusBadGateway:
				time.Sleep(20 * time.Millisecond)
			default:
				t.Fatalf("answer: %d %s", ar.StatusCode, araw)
			}
		case "done":
			return answered, true
		case "failed":
			t.Fatalf("session failed: %s", qr.Error)
		}
	}
	t.Fatal("session did not finish within the retry budget")
	return answered, false
}

func fetchTranscript(t *testing.T, base, id string) []byte {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 200; i++ {
		resp, err := client.Get(base + "/v1/sessions/" + id + "/transcript")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return raw
		case http.StatusConflict, http.StatusServiceUnavailable, http.StatusBadGateway:
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("transcript: %d %s", resp.StatusCode, raw)
		}
	}
	t.Fatal("transcript stayed busy")
	return nil
}

func migrateVia(t *testing.T, base, id, target string) string {
	t.Helper()
	body, _ := json.Marshal(migrateRequest{Session: id, Target: target})
	resp, err := http.Post(base+"/v1/admin/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate %s: %d %s", id, resp.StatusCode, raw)
	}
	var mr migrateResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	return mr.To
}

func TestRendezvousMinimalDisruption(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	members := make([]*member, len(names))
	for i, n := range names {
		members[i] = &member{Member: Member{Name: n}}
	}
	place := func(ms []*member, id string) string { return pick(ms, id).Name }
	moved, total := 0, 500
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("session-%d", i)
		before := place(members, id)
		after := place(members[:3], id) // "d" leaves
		if before != after {
			if before != "d" {
				t.Fatalf("session %s moved from %s to %s though %s stayed", id, before, after, before)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no session was ever placed on the removed member (hash degenerate?)")
	}
	if moved > total/2 {
		t.Fatalf("%d/%d sessions moved when one of four members left", moved, total)
	}
}

func TestReadMemberFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members")
	content := "# fleet\nm1 http://127.0.0.1:1/\n\nm2 http://127.0.0.1:2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := ReadMemberFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{{Name: "m1", URL: "http://127.0.0.1:1"}, {Name: "m2", URL: "http://127.0.0.1:2"}}
	if len(ms) != 2 || ms[0] != want[0] || ms[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", ms, want)
	}
	if err := os.WriteFile(path, []byte("m3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMemberFile(path); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}

func TestLearnedStoreMergeDedupCap(t *testing.T) {
	s := newLearnedStore(3)
	region := func(lo float64) solver.RefutedRegion {
		return solver.RefutedRegion{Box: [][2]float64{{lo, lo + 1}}, Index: 0}
	}
	added, gen := s.Merge("swan", &solver.LearnedSummary{Refuted: []solver.RefutedRegion{region(0), region(1)}})
	if added != 2 || gen != 1 {
		t.Fatalf("first merge: added=%d gen=%d, want 2, 1", added, gen)
	}
	// Duplicates (same bits) do not re-add and do not bump the generation.
	added, gen = s.Merge("swan", &solver.LearnedSummary{Refuted: []solver.RefutedRegion{region(0)}})
	if added != 0 || gen != 1 {
		t.Fatalf("dup merge: added=%d gen=%d, want 0, 1", added, gen)
	}
	// Beyond the cap the oldest regions are evicted.
	s.Merge("swan", &solver.LearnedSummary{Refuted: []solver.RefutedRegion{region(2), region(3)}})
	if s.Len() != 3 {
		t.Fatalf("len after cap overflow = %d, want 3", s.Len())
	}
	sum, _ := s.Summary("swan")
	if len(sum.Refuted) != 3 || sum.Refuted[0].Box[0][0] != 1 {
		t.Fatalf("post-eviction summary wrong: %+v", sum.Refuted)
	}
	if sum2, _ := s.Summary("other"); sum2 != nil {
		t.Fatal("unknown sketch returned a summary")
	}
}

// TestRouterGolden is the fleet acceptance core: sessions created and
// driven entirely through the router finish with transcripts
// bit-identical to the batch run, and correlation IDs survive the hop.
func TestRouterGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(101)
	want := batchTranscript(t, spec, user)

	_, srv, ds := newFleet(t, 2, nil)
	id := createVia(t, srv.URL, spec)
	if !strings.HasPrefix(id, "f") {
		t.Fatalf("router-generated ID %q lacks the fleet prefix", id)
	}

	// Correlation: a client-sent request ID must come back from the
	// router AND appear on the owning daemon's response (the daemon
	// echoes what it received, so this proves end-to-end pass-through).
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/sessions/"+id, nil)
	req.Header.Set("X-Request-Id", "corr-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "corr-test-1" {
		t.Fatalf("router response X-Request-Id = %q, want corr-test-1", got)
	}

	if _, done := drive(t, srv.URL, id, user, -1); !done {
		t.Fatal("session did not finish")
	}
	got := fetchTranscript(t, srv.URL, id)
	if !bytes.Equal(got, want) {
		t.Fatalf("routed transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
	// Exactly one member owns the session.
	owners := 0
	for _, d := range ds {
		r, err := http.Get(d.srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("session resident on %d members, want 1", owners)
	}
}

// TestMigrateQuiescent pins the basic migration protocol on a parked
// session: the admin call moves it, the journal moves with it (the
// source copy is deleted), and the finished transcript is still
// bit-identical to batch.
func TestMigrateQuiescent(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(102)
	spec.ID = "mig-quiescent"
	want := batchTranscript(t, spec, user)

	r, srv, ds := newFleet(t, 2, nil)
	id := createVia(t, srv.URL, spec)
	drive(t, srv.URL, id, user, 2)

	rt := r.routeFor(id)
	rt.mu.Lock()
	before := rt.owner
	rt.mu.Unlock()
	to := migrateVia(t, srv.URL, id, "")
	if to == before {
		t.Fatalf("migrate target %q is the previous owner", to)
	}
	if got := r.met.migrations.Value(); got != 1 {
		t.Fatalf("fleet_migrations_total = %d, want 1", got)
	}
	for _, d := range ds {
		resp, err := http.Get(d.srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wantCode := http.StatusNotFound
		if d.name == to {
			wantCode = http.StatusOK
		}
		if resp.StatusCode != wantCode {
			t.Fatalf("member %s status for %s = %d, want %d", d.name, id, resp.StatusCode, wantCode)
		}
	}

	if _, done := drive(t, srv.URL, id, user, -1); !done {
		t.Fatal("session did not finish after migration")
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-migration transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestMigrateWhileAnswering is the race the migration gate exists for:
// answers hammer the session through the router while migrations
// ping-pong it between members. Every in-flight answer must either land
// before the export (the bundle carries it) or fail cleanly and be
// retried against the new owner — and the final transcript must still
// be bit-identical to batch. Run under -race this also proves the
// gate/drain bookkeeping itself is clean.
func TestMigrateWhileAnswering(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(103)
	spec.ID = "mig-race"
	want := batchTranscript(t, spec, user)

	r, srv, _ := newFleet(t, 3, nil)
	id := createVia(t, srv.URL, spec)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Ping-pong the session as fast as the drain allows. 409s
		// (already migrating / finished) and 404s (session deleted at
		// the end of the test) are expected outcomes here, not errors.
		for {
			select {
			case <-stop:
				return
			default:
			}
			body, _ := json.Marshal(migrateRequest{Session: id})
			resp, err := http.Post(srv.URL+"/v1/admin/migrate", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(30 * time.Millisecond)
		}
	}()

	_, done := drive(t, srv.URL, id, user, -1)
	close(stop)
	wg.Wait()
	if !done {
		t.Fatal("session did not finish under migration churn")
	}
	if got := r.met.migrations.Value(); got == 0 {
		t.Fatal("no migration completed during the churn window")
	} else {
		t.Logf("migrations during churn: %d (failures: %d)", got, r.met.migrationFailures.Value())
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("churned transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestAutoMigrateOnLeave covers the member-file path: removing a
// healthy member from the set drains its live sessions to the
// remaining members automatically.
func TestAutoMigrateOnLeave(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(104)
	spec.ID = "mig-leave"
	want := batchTranscript(t, spec, user)

	r, srv, ds := newFleet(t, 2, nil)
	id := createVia(t, srv.URL, spec)
	drive(t, srv.URL, id, user, 2)

	rt := r.routeFor(id)
	rt.mu.Lock()
	owner := rt.owner
	rt.mu.Unlock()
	var keep []Member
	for _, d := range ds {
		if d.name != owner {
			keep = append(keep, Member{Name: d.name, URL: d.srv.URL})
		}
	}
	if err := r.SetMembers(keep); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.met.migrations.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("departed member %s was not drained (failures: %d)", owner, r.met.migrationFailures.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	rt.mu.Lock()
	newOwner := rt.owner
	rt.mu.Unlock()
	if newOwner == owner {
		t.Fatalf("session still routed to departed member %s", owner)
	}
	if _, done := drive(t, srv.URL, id, user, -1); !done {
		t.Fatal("session did not finish after drain")
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-drain transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRouterRestartProbe covers lazy route recovery: a brand-new router
// (empty routing table) in front of the same members finds a session by
// probing and keeps serving it.
func TestRouterRestartProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(105)
	spec.ID = "probe-restart"
	want := batchTranscript(t, spec, user)

	_, srv, ds := newFleet(t, 2, nil)
	id := createVia(t, srv.URL, spec)
	drive(t, srv.URL, id, user, 2)

	// Second router, same members, no routing state.
	r2, err := New(Config{
		Members: []Member{
			{Name: ds[0].name, URL: ds[0].srv.URL},
			{Name: ds[1].name, URL: ds[1].srv.URL},
		},
		HealthInterval: 50 * time.Millisecond,
		DrainRetry:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(r2.Handler())
	defer srv2.Close()
	defer r2.Close()

	if _, done := drive(t, srv2.URL, id, user, -1); !done {
		t.Fatal("session did not finish through the restarted router")
	}
	if got := fetchTranscript(t, srv2.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("transcript via restarted router differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestSharedLearnedTier covers harvest and warm: one finished session
// seeds the tier (best-effort — refutations only arise when prune
// proves subboxes infeasible), a synthetic region stands in for another
// tenant's harvest so the tier is never empty, a second session on the
// same sketch gets warm pushes, and — the invariance that makes the
// tier safe at all — its transcript is still bit-identical to an
// unwarmed batch run. The synthetic region has the wrong
// dimensionality on purpose: the daemon must skip what it cannot
// re-prove, so even a poisoned tier cannot change results.
func TestSharedLearnedTier(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	r, srv, _ := newFleet(t, 2, func(c *Config) { c.WarmInterval = 1 })

	first := testSpec(106)
	first.ID = "learn-seed"
	idA := createVia(t, srv.URL, first)
	if _, done := drive(t, srv.URL, idA, user, -1); !done {
		t.Fatal("seed session did not finish")
	}
	// Give the async harvest a moment, then log what it found (often
	// zero — the default spec rarely proves boxes infeasible).
	time.Sleep(200 * time.Millisecond)
	t.Logf("tier holds %d regions after harvest", r.learned.Len())

	// Another tenant's harvest, faked: one region the daemon cannot
	// verify (1-D box against the 4-hole swan sketch).
	added, _ := r.learned.Merge("swan", &solver.LearnedSummary{
		Refuted: []solver.RefutedRegion{{Box: [][2]float64{{0, 1}}, Index: 0}},
	})
	if added != 1 {
		t.Fatalf("synthetic merge added %d regions, want 1", added)
	}

	second := testSpec(107)
	second.ID = "learn-warmed"
	want := batchTranscript(t, second, user)
	idB := createVia(t, srv.URL, second)
	if _, done := drive(t, srv.URL, idB, user, -1); !done {
		t.Fatal("warmed session did not finish")
	}
	if got := fetchTranscript(t, srv.URL, idB); !bytes.Equal(got, want) {
		t.Fatalf("warmed transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.met.learnedWarmed.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no warm pushes reached the session's owner")
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("warm pushes delivered: %d", r.met.learnedWarmed.Value())
}

// ---------------------------------------------------------------------
// Replication and failover adoption (DESIGN.md §16).

// handleFor maps a member name back to its in-process daemon.
func handleFor(t *testing.T, ds []*daemonHandle, name string) *daemonHandle {
	t.Helper()
	for _, d := range ds {
		if d.name == name {
			return d
		}
	}
	t.Fatalf("no daemon named %q", name)
	return nil
}

// ownerOf reads a route's current owner.
func ownerOf(r *Router, id string) string {
	rt := r.routeFor(id)
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.owner
}

// waitAdoptions blocks until fleet_adoptions_total reaches n.
func waitAdoptions(t *testing.T, r *Router, n int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for r.met.adoptions.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet_adoptions_total stuck at %d, want >= %d (failures: %d)",
				r.met.adoptions.Value(), n, r.met.adoptionFailures.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// replicaStatusOf asks one member for its copy of a session, returning
// found=false on a 404.
func replicaStatusOf(t *testing.T, base, id string) (service.ReplicaStatus, bool) {
	t.Helper()
	resp, err := http.Get(base + "/v1/replica/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return service.ReplicaStatus{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica status: %d %s", resp.StatusCode, raw)
	}
	var st service.ReplicaStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st, true
}

// replicaPut pushes a raw record stream at a member's replica store and
// returns the HTTP status — the owner's push loop, hand-rolled.
func replicaPut(t *testing.T, base, id string, epoch uint64, reset bool, after int, records []json.RawMessage) int {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"epoch": epoch, "reset": reset, "after": after, "records": records,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/replica/sessions/"+id+"/records", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// journalRecords reads a session's journal off a member's disk, one raw
// record per line.
func journalRecords(t *testing.T, d *daemonHandle, id string) []json.RawMessage {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(d.dir, id+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []json.RawMessage
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		recs = append(recs, json.RawMessage(bytes.Clone(line)))
	}
	return recs
}

// TestFailoverAdoptionZombieFenced is the §16 acceptance core: the
// owner dies for good, the router adopts the session from its replica
// copy, the client finishes through the new owner with a transcript
// bit-identical to batch — and when the old owner comes back as a
// zombie and tries to keep writing, epoch fencing rejects its push and
// the zombie destroys its own stale copy.
func TestFailoverAdoptionZombieFenced(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(108)
	spec.ID = "zombie-fence"
	want := batchTranscript(t, spec, user)

	r, srv, ds := newFleet(t, 3, nil) // defaults: Replicas=2, FailoverAfter=2
	id := createVia(t, srv.URL, spec)
	drive(t, srv.URL, id, user, 2)

	owner := ownerOf(r, id)
	dead := handleFor(t, ds, owner)
	dead.srv.Close() // SIGKILL, in-process flavor: the listener vanishes
	waitAdoptions(t, r, 1, 15*time.Second)
	if got := ownerOf(r, id); got == owner {
		t.Fatalf("route still points at the dead owner %s", owner)
	}

	// Resurrect the old owner's manager on a fresh listener: a zombie
	// that still believes it owns the session and still knows its
	// replica targets. Its next journal append must be fenced.
	zombie := httptest.NewServer(service.Handler(dead.mgr))
	defer zombie.Close()
	resp, err := http.Get(zombie.URL + "/v1/sessions/" + id + "/query?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var qr queryResp
	if resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &qr) == nil && qr.State == "awaiting_answer" {
		pref := user.Compare(scenario.Scenario(qr.A), scenario.Scenario(qr.B))
		ab, _ := json.Marshal(map[string]any{"seq": qr.Seq, "pref": prefWord(pref)})
		ar, err := http.Post(zombie.URL+"/v1/sessions/"+id+"/answer", "application/json", bytes.NewReader(ab))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, ar.Body)
		ar.Body.Close()
		// The answer may confirm locally before the fence lands; either
		// way the fenced push must make the zombie abandon the session.
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sr, err := http.Get(zombie.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, sr.Body)
		sr.Body.Close()
		if sr.StatusCode == http.StatusNotFound {
			break // fenced and self-destroyed
		}
		if time.Now().After(deadline) {
			t.Fatalf("zombie owner still serves session %s after a fenced push", id)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The client, oblivious to all of the above, finishes the session
	// through the router and gets the canonical transcript.
	if _, done := drive(t, srv.URL, id, user, -1); !done {
		t.Fatal("session did not finish after adoption")
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-adoption transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestAdoptionPrefersFullestCopy pins the candidate ordering: when two
// replica copies disagree, the one missing the journal tail loses to
// the fuller one even if the rendezvous ranking prefers it. The
// rendezvous-ranked replica is rewritten to a lagging prefix and the
// full record stream is planted on the other survivor; adoption must
// promote the full copy and fence the lagging one.
func TestAdoptionPrefersFullestCopy(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(109)
	spec.ID = "adopt-lag"
	want := batchTranscript(t, spec, user)

	r, srv, ds := newFleet(t, 3, nil)
	id := createVia(t, srv.URL, spec)
	drive(t, srv.URL, id, user, 3)
	time.Sleep(500 * time.Millisecond) // let trailing checkpoint appends settle

	owner := ownerOf(r, id)
	var holder, third *daemonHandle
	for _, d := range ds {
		if d.name == owner {
			continue
		}
		if _, ok := replicaStatusOf(t, d.srv.URL, id); ok {
			holder = d
		} else {
			third = d
		}
	}
	if holder == nil || third == nil {
		t.Fatalf("expected exactly one replica holder among the non-owners")
	}

	recs := journalRecords(t, handleFor(t, ds, owner), id)
	if len(recs) < 2 {
		t.Fatalf("owner journal has only %d records", len(recs))
	}
	// Plant the full stream on the member rendezvous never chose, then
	// cut the tail off the ranked replica's copy.
	if code := replicaPut(t, third.srv.URL, id, 0, true, 0, recs); code != http.StatusOK {
		t.Fatalf("planting full copy: %d", code)
	}
	if code := replicaPut(t, holder.srv.URL, id, 0, true, 0, recs[:len(recs)-1]); code != http.StatusOK {
		t.Fatalf("truncating ranked copy: %d", code)
	}

	handleFor(t, ds, owner).srv.Close()
	waitAdoptions(t, r, 1, 15*time.Second)
	if got := ownerOf(r, id); got != third.name {
		t.Fatalf("adoption promoted %s, want the fullest copy on %s", got, third.name)
	}
	// The lagging copy must be fenced at the adoption epoch so it can
	// never be promoted later.
	if st, ok := replicaStatusOf(t, holder.srv.URL, id); ok && st.Epoch == 0 {
		t.Fatalf("lagging copy on %s was not fenced (epoch still 0)", holder.name)
	}

	if _, done := drive(t, srv.URL, id, user, -1); !done {
		t.Fatal("session did not finish after adoption")
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-adoption transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}

// TestAdoptWhileAnswering is the failover analog of
// TestMigrateWhileAnswering, and the reason the adoption path shares
// the migration drain gate: answers hammer the session through the
// router while its owner is killed — twice, so the second adoption can
// only succeed off the copy the first adoption re-replicated. Run
// under -race this proves the gate, the health-probe trigger, and the
// push bookkeeping are clean against live traffic.
func TestAdoptWhileAnswering(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs are not -short friendly")
	}
	user := swanUser(t)
	spec := testSpec(110)
	spec.ID = "adopt-race"
	want := batchTranscript(t, spec, user)

	r, srv, ds := newFleet(t, 4, nil)
	id := createVia(t, srv.URL, spec)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := int64(1); round <= 2; round++ {
			time.Sleep(300 * time.Millisecond)
			owner := ownerOf(r, id)
			if owner == "" {
				t.Error("session lost its route mid-churn")
				return
			}
			for _, d := range ds {
				if d.name == owner {
					d.srv.Close()
				}
			}
			deadline := time.Now().Add(20 * time.Second)
			for r.met.adoptions.Value() < round {
				if time.Now().After(deadline) {
					t.Errorf("adoption %d never happened (failures: %d)",
						round, r.met.adoptionFailures.Value())
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}()

	_, done := drive(t, srv.URL, id, user, -1)
	wg.Wait()
	if !done {
		t.Fatal("session did not finish under failover churn")
	}
	if got := r.met.adoptions.Value(); got < 2 {
		t.Fatalf("fleet_adoptions_total = %d, want >= 2", got)
	}
	if got := fetchTranscript(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("churned transcript differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}
