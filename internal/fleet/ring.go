package fleet

// Membership and placement: rendezvous (highest-random-weight) hashing
// over the healthy members, a /readyz health checker, and the watched
// member file. Rendezvous hashing was chosen over a token ring because
// the member counts here are small (units to tens of daemons) and it
// gives minimal disruption on membership change with no virtual-node
// bookkeeping: a session moves only if its top-scoring member is the
// one that changed.

import (
	"bufio"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// member is a Member plus its live serving state.
type member struct {
	Member
	// healthy mirrors the last /readyz probe (true = 200).
	healthy atomic.Bool
	// departed marks a member removed from the member file: excluded
	// from new placements and drained by migration, but still routable
	// for sessions pinned to it (finished sessions stay until deleted).
	departed atomic.Bool
	// failStreak counts consecutive failed probes; crossing
	// Config.FailoverAfter declares the member dead and triggers
	// failover adoption of its sessions (adopting is the once-only
	// latch for that scan).
	failStreak atomic.Int32
	adopting   atomic.Bool
}

func (m *member) placeable() bool { return m.healthy.Load() && !m.departed.Load() }

// rendezvousScore is 64-bit FNV-1a over "memberName\x00sessionID".
// Deterministic across processes (no seed), so a restarted router
// computes the same placements.
func rendezvousScore(memberName, sessionID string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(memberName)
	h ^= 0
	h *= 1099511628211
	mix(sessionID)
	return h
}

// pick returns the highest-scoring member among candidates for the
// session, or nil when candidates is empty.
func pick(candidates []*member, sessionID string) *member {
	var best *member
	var bestScore uint64
	for _, m := range candidates {
		score := rendezvousScore(m.Name, sessionID)
		if best == nil || score > bestScore || (score == bestScore && m.Name < best.Name) {
			best, bestScore = m, score
		}
	}
	return best
}

// rank orders candidates by descending rendezvous score (name
// ascending on ties, matching pick). Rank 0 is the session's owner;
// ranks 1..R-1 are its replica set (DESIGN.md §16), so placement and
// replication derive from the same deterministic ordering.
func rank(candidates []*member, sessionID string) []*member {
	out := append([]*member(nil), candidates...)
	sort.Slice(out, func(i, j int) bool {
		si := rendezvousScore(out[i].Name, sessionID)
		sj := rendezvousScore(out[j].Name, sessionID)
		if si != sj {
			return si > sj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// placeable returns the members eligible for new placements, in stable
// name order. Caller holds r.mu.
func (r *Router) placeableLocked() []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.memberOrder {
		if mm := r.members[m]; mm != nil && mm.placeable() {
			out = append(out, mm)
		}
	}
	return out
}

// healthLoop probes every member's /readyz each HealthInterval and
// maintains the fleet_member_unhealthy gauge. Probes run inline (the
// member counts are small and the timeout short).
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.checkHealth()
		r.sweepRoutes()
	}
}

// checkHealth probes each member once and records transitions.
func (r *Router) checkHealth() {
	r.mu.Lock()
	ms := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	unhealthy := 0
	for _, m := range ms {
		ok := r.probe(m)
		was := m.healthy.Swap(ok)
		if was != ok {
			if ok {
				r.log.Info("fleet.member.healthy", "member", m.Name, "url", m.URL)
				// Anti-entropy (DESIGN.md §16): the member may have come
				// back with an empty disk, holding none of its standby
				// copies. Ordinary pushes only ride appends, so ask the
				// rest of the fleet to re-push every journal replicated
				// here — otherwise a later failover onto this member
				// would find nothing to adopt.
				if r.cfg.Replicas > 1 {
					r.wg.Add(1)
					go r.resyncFleet(m.Name)
				}
			} else {
				r.log.Warn("fleet.member.unhealthy", "member", m.Name, "url", m.URL)
			}
		}
		if ok {
			m.failStreak.Store(0)
			continue
		}
		unhealthy++
		// Crossing the failover threshold declares the member dead once
		// per outage: its sessions are adopted from their replica copies.
		// The streak keeps counting so the trigger cannot re-fire until
		// the member comes back healthy in between.
		streak := r.cfg.FailoverAfter
		if streak > 0 && r.cfg.Replicas > 1 &&
			int(m.failStreak.Add(1)) == streak &&
			m.adopting.CompareAndSwap(false, true) {
			r.wg.Add(1)
			go r.adoptFrom(m)
		}
	}
	r.met.memberUnhealthy.Set(float64(unhealthy))
	r.met.members.Set(float64(len(ms)))
}

// probe is one /readyz round trip.
func (r *Router) probe(m *member) bool {
	req, err := http.NewRequest(http.MethodGet, m.URL+"/readyz", nil)
	if err != nil {
		return false
	}
	ctx, cancel := timeoutContext(r.stop, r.cfg.HealthTimeout)
	defer cancel()
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// SetMembers replaces the member set (the watch loop's entry point; also
// handy for tests). Removed members are marked departed and their live
// sessions drained by migration in the background; a re-added departed
// member simply rejoins.
func (r *Router) SetMembers(ms []Member) error {
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if err := validateMember(m); err != nil {
			return err
		}
		if seen[m.Name] {
			return fmt.Errorf("fleet: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
	}
	var departed []*member
	r.mu.Lock()
	for _, m := range ms {
		if cur, ok := r.members[m.Name]; ok {
			cur.URL = m.URL
			if cur.departed.Swap(false) {
				r.log.Info("fleet.member.rejoin", "member", m.Name)
			}
			continue
		}
		nm := &member{Member: m}
		r.members[m.Name] = nm
		r.memberOrder = append(r.memberOrder, m.Name)
		r.log.Info("fleet.member.join", "member", m.Name, "url", m.URL)
	}
	for name, m := range r.members {
		if !seen[name] && !m.departed.Load() {
			m.departed.Store(true)
			departed = append(departed, m)
			r.log.Info("fleet.member.leave", "member", name)
		}
	}
	r.met.members.Set(float64(len(r.members)))
	r.mu.Unlock()
	// Probe immediately so placements (and the drains below) do not
	// wait a full health interval for new members to become eligible.
	r.checkHealth()
	for _, m := range departed {
		// Give each departure its own drain goroutine: the member is
		// still healthy (administrative leave), so its live sessions can
		// move; finished sessions stay pinned to it until deleted.
		r.wg.Add(1)
		go r.drainMember(m)
	}
	return nil
}

func validateMember(m Member) error {
	if m.Name == "" {
		return fmt.Errorf("fleet: member with empty name")
	}
	u, err := url.Parse(m.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("fleet: member %q has invalid URL %q", m.Name, m.URL)
	}
	return nil
}

// Members reports the member set for the admin API.
type MemberStatus struct {
	Member
	Healthy  bool `json:"healthy"`
	Departed bool `json:"departed,omitempty"`
}

func (r *Router) Members() []MemberStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MemberStatus, 0, len(r.members))
	for _, name := range r.memberOrder {
		m := r.members[name]
		if m == nil {
			continue
		}
		out = append(out, MemberStatus{Member: m.Member, Healthy: m.healthy.Load(), Departed: m.departed.Load()})
	}
	return out
}

// watchLoop polls the member file for changes by (mtime, size) and
// applies them via SetMembers.
func (r *Router) watchLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.WatchInterval)
	defer t.Stop()
	var lastMod time.Time
	var lastSize int64
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		st, err := os.Stat(r.cfg.MemberFile)
		if err != nil {
			continue // transient (editor replace); keep the last good set
		}
		if st.ModTime().Equal(lastMod) && st.Size() == lastSize {
			continue
		}
		ms, err := ReadMemberFile(r.cfg.MemberFile)
		if err != nil {
			r.log.Warn("fleet.memberfile.error", "path", r.cfg.MemberFile, "error", err.Error())
			continue
		}
		lastMod, lastSize = st.ModTime(), st.Size()
		if err := r.SetMembers(ms); err != nil {
			r.log.Warn("fleet.memberfile.reject", "path", r.cfg.MemberFile, "error", err.Error())
		}
	}
}

// ReadMemberFile parses a membership file: one "name url" pair per
// line, blank lines and '#' comments ignored.
func ReadMemberFile(path string) ([]Member, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ms []Member
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("fleet: %s:%d: want \"name url\", got %q", path, lineNo, line)
		}
		ms = append(ms, Member{Name: fields[0], URL: strings.TrimSuffix(fields[1], "/")})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ms, nil
}
