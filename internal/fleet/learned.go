package fleet

// The shared learned tier: a router-side store that merges the
// learned-prune summaries exported by member sessions, per sketch, so
// one tenant's refutations warm every replica. The store is advisory
// cache content only — the receiving daemon re-proves every region
// before installing it (System.WarmLearned), so a stale, foreign, or
// even corrupted region can cost a skipped verify but never change a
// session's answers.

import (
	"math"
	"strconv"
	"sync"

	"compsynth/internal/solver"
)

// learnedStore merges learned summaries per sketch with exact-region
// dedup and FIFO eviction at the configured cap.
type learnedStore struct {
	mu       sync.Mutex
	cap      int
	sketches map[string]*sketchTier
	total    int
}

type sketchTier struct {
	// gen counts mutations; warm pushes compare it against the last
	// generation a session received so unchanged tiers are not re-sent.
	gen     uint64
	regions map[string]solver.RefutedRegion
	order   []string // insertion order, oldest first, for eviction
}

func newLearnedStore(cap int) *learnedStore {
	return &learnedStore{cap: cap, sketches: make(map[string]*sketchTier)}
}

// regionKey is an exact fingerprint of one refuted region: the raw
// float bits of the box bounds plus the constraint coordinates, so
// dedup never conflates regions that differ only in sign of zero or in
// the refuting constraint.
func regionKey(r solver.RefutedRegion) string {
	b := make([]byte, 0, 16+len(r.Box)*34)
	if r.Tie {
		b = append(b, 't')
	} else {
		b = append(b, 'p')
	}
	b = strconv.AppendInt(b, int64(r.Index), 10)
	for _, iv := range r.Box {
		b = append(b, '|')
		b = strconv.AppendUint(b, math.Float64bits(iv[0]), 16)
		b = append(b, ',')
		b = strconv.AppendUint(b, math.Float64bits(iv[1]), 16)
	}
	return string(b)
}

// Merge folds a summary into the sketch's tier. Returns how many
// regions were new and the tier's generation after the merge.
func (s *learnedStore) Merge(sketch string, sum *solver.LearnedSummary) (added int, gen uint64) {
	if sketch == "" || sum == nil || len(sum.Refuted) == 0 {
		return 0, s.gen(sketch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.sketches[sketch]
	if t == nil {
		t = &sketchTier{regions: make(map[string]solver.RefutedRegion)}
		s.sketches[sketch] = t
	}
	for _, r := range sum.Refuted {
		k := regionKey(r)
		if _, ok := t.regions[k]; ok {
			continue
		}
		t.regions[k] = r
		t.order = append(t.order, k)
		s.total++
		added++
		for len(t.order) > s.cap {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.regions, evict)
			s.total--
		}
	}
	if added > 0 {
		t.gen++
	}
	return added, t.gen
}

// Summary snapshots the sketch's merged tier (nil when empty) along
// with its generation, in stable insertion order so repeated pushes of
// an unchanged tier are byte-identical.
func (s *learnedStore) Summary(sketch string) (*solver.LearnedSummary, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.sketches[sketch]
	if t == nil || len(t.order) == 0 {
		return nil, 0
	}
	sum := &solver.LearnedSummary{Refuted: make([]solver.RefutedRegion, 0, len(t.order))}
	for _, k := range t.order {
		sum.Refuted = append(sum.Refuted, t.regions[k])
	}
	return sum, t.gen
}

func (s *learnedStore) gen(sketch string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.sketches[sketch]; t != nil {
		return t.gen
	}
	return 0
}

// Len is the total resident region count across sketches (the
// fleet_learned_regions gauge).
func (s *learnedStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
