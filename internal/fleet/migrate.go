package fleet

// Live session migration. The protocol, in order:
//
//  1. gate the session's router traffic (route.draining) and wait for
//     the in-flight count to drain — an in-flight answer either lands
//     before the export (the bundle carries it) or never reached the
//     old owner and is retried by the client against the new one;
//  2. export the migration bundle from the old owner, retrying while
//     the session is mid-step (409 + Retry-After from the daemon);
//  3. create the session on the new owner under the same ID (the spec
//     travels inside the bundle) and import the partial transcript —
//     the daemon's session_id tamper check makes a misrouted import a
//     hard 409 instead of a silently corrupted session;
//  4. push the learned summary (advisory; the new owner re-proves every
//     region) and delete the session, journal included, from the old
//     owner so a later migration back is clean;
//  5. flip the routing entry and reopen the gate.
//
// A failure before step 3's create leaves the session untouched on the
// old owner; a failure after it deletes the half-built copy from the
// target before reopening the gate, so there is never a moment with two
// routable copies.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"compsynth/internal/service"
	"compsynth/internal/solver"
)

var (
	errUnknownSession = errors.New("fleet: unknown session")
	errNotMigratable  = errors.New("fleet: session is not migratable")
	errMigrating      = errors.New("fleet: migration already in progress")
	errNoTarget       = errors.New("fleet: no eligible target member")
)

// Migrate moves one session. target names the destination member;
// empty re-picks by rendezvous among the placeable members excluding
// the current owner. Returns the source and destination member names.
func (r *Router) Migrate(ctx context.Context, id, target string) (from, to string, err error) {
	rt := r.routeFor(id)
	if rt == nil {
		if owner := r.probeForSession(ctx, id); owner != nil {
			rt = r.setRoute(id, owner.Name)
		} else {
			return "", "", fmt.Errorf("%w: %s", errUnknownSession, id)
		}
	}
	rt.mu.Lock()
	srcName := rt.owner
	rt.mu.Unlock()
	src := r.memberByName(srcName)
	if src == nil {
		return "", "", fmt.Errorf("fleet: session %s: owner %s left the fleet", id, srcName)
	}
	var dst *member
	if target != "" {
		if target == srcName {
			return "", "", fmt.Errorf("%w: %s already owns %s", errNotMigratable, target, id)
		}
		dst = r.memberByName(target)
		if dst == nil || !dst.healthy.Load() {
			return "", "", fmt.Errorf("%w: %s", errNoTarget, target)
		}
	} else {
		r.mu.Lock()
		candidates := r.placeableLocked()
		r.mu.Unlock()
		filtered := candidates[:0]
		for _, m := range candidates {
			if m.Name != srcName {
				filtered = append(filtered, m)
			}
		}
		if dst = pick(filtered, id); dst == nil {
			return "", "", fmt.Errorf("%w: for %s", errNoTarget, id)
		}
	}

	// Gate the route.
	rt.mu.Lock()
	if rt.draining {
		rt.mu.Unlock()
		return "", "", fmt.Errorf("%w: %s", errMigrating, id)
	}
	rt.draining = true
	rt.unblocked = make(chan struct{})
	drained := make(chan struct{})
	if rt.inflight == 0 {
		close(drained)
	} else {
		rt.drained = drained
	}
	rt.mu.Unlock()

	start := time.Now()
	success := false
	defer func() {
		rt.mu.Lock()
		rt.draining = false
		rt.drained = nil
		if success {
			rt.owner = dst.Name
			rt.warmGen = 0 // the new owner has none of the pushed regions
		}
		close(rt.unblocked)
		rt.mu.Unlock()
		if success {
			r.met.migrations.Inc()
			r.met.migrateSeconds.Observe(time.Since(start).Seconds())
			r.log.Info("fleet.migrate", "session", id, "from", srcName, "to", dst.Name,
				"dur_ms", time.Since(start).Seconds()*1e3)
		} else {
			r.met.migrationFailures.Inc()
			if err != nil {
				r.log.Warn("fleet.migrate.failed", "session", id, "from", srcName, "error", err.Error())
			}
		}
	}()

	dctx, cancel := context.WithTimeout(ctx, r.cfg.MigrateTimeout)
	defer cancel()
	select {
	case <-drained:
	case <-dctx.Done():
		return "", "", fmt.Errorf("fleet: session %s: drain: %w", id, dctx.Err())
	}

	rawBundle, err := r.fetchBundle(dctx, src, id)
	if err != nil {
		return "", "", err
	}

	// One call adopts the session on the target: the daemon rebuilds it
	// by deterministic replay of the bundle's journal records (the
	// bit-equal resume path) and warms its learned cache from the
	// bundle's summary. The raw bytes pass through untouched — no
	// re-encode between export and import.
	status, body, err := r.do(dctx, http.MethodPut, dst.URL+"/v1/sessions/"+id+"/restore", rawBundle)
	if err != nil {
		return "", "", fmt.Errorf("fleet: restore on %s: %w", dst.Name, err)
	}
	if status != http.StatusOK {
		return "", "", fmt.Errorf("fleet: restore on %s: %d %s", dst.Name, status, firstLine(body))
	}

	if status, body, err = r.do(dctx, http.MethodDelete, src.URL+"/v1/sessions/"+id, nil); err != nil || (status != http.StatusOK && status != http.StatusNoContent && status != http.StatusNotFound) {
		// The copy on the target is authoritative from here on; the
		// leftover source copy only wastes a journal until its daemon is
		// next asked for it.
		r.log.Warn("fleet.migrate.source_delete", "session", id, "member", srcName,
			"status", status, "detail", firstLine(body))
	}

	success = true
	return srcName, dst.Name, nil
}

// fetchBundle exports the migration bundle (returned as raw bytes so
// the restore call ships exactly what the source produced), retrying
// while the session is mid-step. The daemon distinguishes the two 409s
// by header: busy carries Retry-After (quiesce and come back), conflict
// does not (done/failed sessions are not migratable).
func (r *Router) fetchBundle(ctx context.Context, src *member, id string) ([]byte, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, src.URL+"/v1/sessions/"+id+"/bundle", nil)
		if err != nil {
			return nil, err
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("fleet: bundle from %s: %w", src.Name, err)
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var b service.MigrationBundle
			if err := json.Unmarshal(raw, &b); err != nil {
				return nil, fmt.Errorf("fleet: bundle from %s: %w", src.Name, err)
			}
			return raw, nil
		case resp.StatusCode == http.StatusConflict && resp.Header.Get("Retry-After") != "":
			select {
			case <-time.After(r.cfg.DrainRetry):
			case <-ctx.Done():
				return nil, fmt.Errorf("fleet: bundle from %s: %w", src.Name, ctx.Err())
			}
		case resp.StatusCode == http.StatusConflict:
			return nil, fmt.Errorf("%w: %s (%s)", errNotMigratable, id, firstLine(raw))
		case resp.StatusCode == http.StatusNotFound:
			return nil, fmt.Errorf("%w: %s vanished from %s", errUnknownSession, id, src.Name)
		default:
			return nil, fmt.Errorf("fleet: bundle from %s: %d %s", src.Name, resp.StatusCode, firstLine(raw))
		}
	}
}

// drainMember migrates every live session off a departed member (run
// as a goroutine per departure; r.wg accounted by the caller).
func (r *Router) drainMember(m *member) {
	defer r.wg.Done()
	r.mu.Lock()
	var ids []string
	for id, rt := range r.routes {
		rt.mu.Lock()
		if rt.owner == m.Name {
			ids = append(ids, id)
		}
		rt.mu.Unlock()
	}
	r.mu.Unlock()
	moved := 0
	for _, id := range ids {
		if m.departed.Load() == false {
			return // rejoined mid-drain
		}
		ctx, cancel := timeoutContext(r.stop, r.cfg.MigrateTimeout)
		_, _, err := r.Migrate(ctx, id, "")
		cancel()
		if err == nil {
			moved++
		} else if !errors.Is(err, errNotMigratable) {
			r.log.Warn("fleet.drain.failed", "member", m.Name, "session", id, "error", err.Error())
		}
	}
	r.log.Info("fleet.drain", "member", m.Name, "sessions", len(ids), "migrated", moved)
}

// learnedPayload mirrors the daemon's GET learned response shape.
type learnedPayload struct {
	Sketch  string                 `json:"sketch"`
	Learned *solver.LearnedSummary `json:"learned,omitempty"`
}

// harvestRoute pulls a finished session's learned summary into the
// shared tier.
func (r *Router) harvestRoute(rt *route) {
	defer r.wg.Done()
	lp, ok := r.fetchLearned(rt)
	if !ok {
		return
	}
	added, _ := r.learned.Merge(lp.Sketch, lp.Learned)
	if added > 0 {
		r.met.learnedHarvested.Add(int64(added))
		r.log.Info("fleet.learned.harvest", "session", rt.id, "sketch", lp.Sketch, "regions", added)
	}
}

// warmRoute pushes the shared tier's merged summary into an active
// session (skipped when the tier hasn't changed since the last push).
func (r *Router) warmRoute(rt *route) {
	defer r.wg.Done()
	defer func() {
		rt.mu.Lock()
		rt.warming = false
		rt.mu.Unlock()
	}()
	rt.mu.Lock()
	sketch := rt.sketch
	rt.mu.Unlock()
	if sketch == "" {
		lp, ok := r.fetchLearned(rt)
		if !ok {
			return
		}
		sketch = lp.Sketch
		rt.mu.Lock()
		rt.sketch = sketch
		rt.mu.Unlock()
		// The pull is a free harvest: the session's own refutations join
		// the tier even before it finishes.
		if added, _ := r.learned.Merge(sketch, lp.Learned); added > 0 {
			r.met.learnedHarvested.Add(int64(added))
		}
	}
	sum, gen := r.learned.Summary(sketch)
	rt.mu.Lock()
	stale := sum == nil || gen == rt.warmGen
	owner := rt.owner
	rt.mu.Unlock()
	if stale {
		return
	}
	m := r.memberByName(owner)
	if m == nil {
		return
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		return
	}
	ctx, cancel := timeoutContext(r.stop, r.cfg.HealthTimeout)
	defer cancel()
	status, _, err := r.do(ctx, http.MethodPut, m.URL+"/v1/sessions/"+rt.id+"/learned", raw)
	if err != nil || status != http.StatusOK {
		return // busy or restarting; the next interval retries
	}
	rt.mu.Lock()
	rt.warmGen = gen
	rt.mu.Unlock()
	r.met.learnedWarmed.Inc()
}

// fetchLearned GETs a session's learned export from its owner.
func (r *Router) fetchLearned(rt *route) (*learnedPayload, bool) {
	rt.mu.Lock()
	owner := rt.owner
	rt.mu.Unlock()
	m := r.memberByName(owner)
	if m == nil {
		return nil, false
	}
	ctx, cancel := timeoutContext(r.stop, r.cfg.HealthTimeout)
	defer cancel()
	status, raw, err := r.do(ctx, http.MethodGet, m.URL+"/v1/sessions/"+rt.id+"/learned", nil)
	if err != nil || status != http.StatusOK {
		return nil, false
	}
	var lp learnedPayload
	if json.Unmarshal(raw, &lp) != nil || lp.Sketch == "" {
		return nil, false
	}
	return &lp, true
}

// do is the control-plane request helper (bundle/create/import/delete
// and learned traffic — not the proxy path, which streams the client's
// own headers through).
func (r *Router) do(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, raw, nil
}

// firstLine trims an error body for log/error embedding.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
