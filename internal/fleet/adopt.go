package fleet

// Failover adoption (DESIGN.md §16). When the health checker declares
// a member dead (Config.FailoverAfter consecutive failed probes), the
// router moves every session routed to it onto the best surviving
// replica copy. The protocol per session, in order:
//
//  1. gate the session's route (same drain gate as migration) so no
//     request is mid-flight across the flip;
//  2. survey the live members for their copy of the session's journal
//     (GET /v1/replica/sessions/{id}) and order the candidates: higher
//     epoch first, then more records, then rendezvous rank — a lagging
//     copy is never adopted while a fuller one exists;
//  3. pick the new epoch (max surveyed epoch + 1) and fence every
//     losing candidate at it (POST fence), so a copy that was passed
//     over can never later be promoted at a stale epoch;
//  4. adopt on the winner (POST adopt): the member fences its own copy
//     in the same atomic step that snapshots it, replays the records
//     through the deterministic-replay restore path, and re-replicates
//     to the replica set the router hands it (ranks of the surviving
//     members);
//  5. flip the route and reopen the gate.
//
// A winner whose replay fails is skipped — the next candidate is tried
// at the next epoch, so the failed copy (fenced by its own adoption
// attempt) stays unadoptable. The dead owner needs no step at all:
// epoch fencing makes it a zombie, and its first push after a
// resurrection is rejected, at which point it destroys its stale copy.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"compsynth/internal/service"
)

var errNoReplica = errors.New("fleet: no promotable replica copy")

// adoptFrom adopts every session routed to a dead member. One scan per
// outage (the member.adopting latch); the scan aborts early if the
// member comes back healthy.
func (r *Router) adoptFrom(dead *member) {
	defer r.wg.Done()
	defer dead.adopting.Store(false)
	r.mu.Lock()
	var rts []*route
	for _, rt := range r.routes {
		rt.mu.Lock()
		if rt.owner == dead.Name {
			rts = append(rts, rt)
		}
		rt.mu.Unlock()
	}
	r.mu.Unlock()
	if len(rts) == 0 {
		return
	}
	sort.Slice(rts, func(i, j int) bool { return rts[i].id < rts[j].id })
	r.log.Warn("fleet.failover", "member", dead.Name, "sessions", len(rts))
	adopted := 0
	for _, rt := range rts {
		if dead.healthy.Load() {
			r.log.Info("fleet.failover.aborted", "member", dead.Name, "adopted", adopted)
			return
		}
		if err := r.adoptRoute(rt, dead.Name); err != nil {
			r.met.adoptionFailures.Inc()
			r.log.Warn("fleet.adopt.failed", "session", rt.id, "from", dead.Name, "error", err.Error())
			continue
		}
		adopted++
	}
	r.log.Info("fleet.failover.done", "member", dead.Name, "sessions", len(rts), "adopted", adopted)
}

// adoptRoute fails one routed session over from its dead owner.
func (r *Router) adoptRoute(rt *route, deadName string) error {
	// Gate the route exactly like migration does. In-flight requests to
	// a dead owner fail fast (connection refused), so the drain is quick.
	rt.mu.Lock()
	if rt.draining {
		rt.mu.Unlock()
		return fmt.Errorf("%w: %s", errMigrating, rt.id)
	}
	if rt.owner != deadName {
		rt.mu.Unlock()
		return nil // already moved (migration or a concurrent rescue)
	}
	rt.draining = true
	rt.unblocked = make(chan struct{})
	drained := make(chan struct{})
	if rt.inflight == 0 {
		close(drained)
	} else {
		rt.drained = drained
	}
	rt.mu.Unlock()

	start := time.Now()
	var winner *member
	defer func() {
		rt.mu.Lock()
		rt.draining = false
		rt.drained = nil
		if winner != nil {
			rt.owner = winner.Name
			rt.warmGen = 0 // the new owner has none of the pushed regions
		}
		close(rt.unblocked)
		rt.mu.Unlock()
		if winner != nil {
			r.met.adoptions.Inc()
			r.met.adoptSeconds.Observe(time.Since(start).Seconds())
			r.log.Info("fleet.adopt", "session", rt.id, "from", deadName, "to", winner.Name,
				"dur_ms", time.Since(start).Seconds()*1e3)
		}
	}()

	dctx, cancel := timeoutContext(r.stop, r.cfg.MigrateTimeout)
	defer cancel()
	select {
	case <-drained:
	case <-dctx.Done():
		return fmt.Errorf("fleet: session %s: adopt drain: %w", rt.id, dctx.Err())
	}

	m, err := r.adoptSession(rt.id, deadName)
	if err != nil {
		return err
	}
	winner = m
	return nil
}

// adoptOrphan is the probe-on-miss fallback: no route, no owning
// member, but maybe a surviving replica copy. Returns the adopting
// member, nil when the session is genuinely unknown.
func (r *Router) adoptOrphan(id string) *member {
	m, err := r.adoptSession(id, "")
	if err != nil {
		if !errors.Is(err, errNoReplica) {
			r.met.adoptionFailures.Inc()
			r.log.Warn("fleet.adopt.failed", "session", id, "error", err.Error())
		}
		return nil
	}
	r.met.adoptions.Inc()
	r.log.Info("fleet.adopt", "session", id, "from", "(orphan)", "to", m.Name)
	return m
}

// resyncFleet asks every other healthy member to re-push the journals
// it replicates to name (POST /v1/replica/resync) — the anti-entropy
// broadcast, fired when name transitions back to healthy. A member
// that rejoined after losing its disk holds none of its standby
// copies, and ordinary pushes only ride appends, so sessions that had
// already finished would stay un-replicated there until a failover
// needed their copy and found nothing.
func (r *Router) resyncFleet(name string) {
	defer r.wg.Done()
	body, _ := json.Marshal(map[string]string{"member": name})
	r.mu.Lock()
	ms := make([]*member, 0, len(r.members))
	for _, order := range r.memberOrder {
		if m := r.members[order]; m != nil && m.Name != name && m.healthy.Load() {
			ms = append(ms, m)
		}
	}
	r.mu.Unlock()
	for _, m := range ms {
		ctx, cancel := timeoutContext(r.stop, r.cfg.MigrateTimeout)
		status, raw, err := r.do(ctx, http.MethodPost, m.URL+"/v1/replica/resync", body)
		cancel()
		if err != nil || status != http.StatusOK {
			detail := firstLine(raw)
			if err != nil {
				detail = err.Error()
			}
			r.log.Warn("fleet.resync.failed", "member", m.Name, "target", name,
				"status", status, "error", detail)
			continue
		}
		var res struct {
			Synced int `json:"synced"`
		}
		if json.Unmarshal(raw, &res) == nil && res.Synced > 0 {
			r.log.Info("fleet.resync", "member", m.Name, "target", name, "sessions", res.Synced)
		}
	}
}

// replicaCandidate is one surveyed copy.
type replicaCandidate struct {
	m       *member
	epoch   uint64
	records int
}

// adoptSession surveys, fences, and promotes — steps 2 through 4 of
// the protocol. exclude names the dead owner (skipped in the survey
// and in the new replica set); empty for the orphan path.
func (r *Router) adoptSession(id, exclude string) (*member, error) {
	r.mu.Lock()
	live := make([]*member, 0, len(r.members))
	for _, name := range r.memberOrder {
		if m := r.members[name]; m != nil && m.Name != exclude && m.healthy.Load() {
			live = append(live, m)
		}
	}
	r.mu.Unlock()

	// Survey: who holds a copy, at what epoch, how complete.
	var cands []replicaCandidate
	var maxEpoch uint64
	for _, m := range live {
		ctx, cancel := timeoutContext(r.stop, r.cfg.HealthTimeout)
		status, raw, err := r.do(ctx, http.MethodGet, m.URL+"/v1/replica/sessions/"+id, nil)
		cancel()
		if err != nil || status != http.StatusOK {
			continue
		}
		var st service.ReplicaStatus
		if json.Unmarshal(raw, &st) != nil {
			continue
		}
		if st.Records == 0 {
			continue // a fence tombstone, not a copy
		}
		cands = append(cands, replicaCandidate{m: m, epoch: st.Epoch, records: st.Records})
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %s", errNoReplica, id)
	}
	// Candidate order: epoch, then completeness, then rendezvous rank.
	ranked := rank(live, id)
	rankOf := make(map[string]int, len(ranked))
	for i, m := range ranked {
		rankOf[m.Name] = i
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].epoch != cands[j].epoch {
			return cands[i].epoch > cands[j].epoch
		}
		if cands[i].records != cands[j].records {
			return cands[i].records > cands[j].records
		}
		return rankOf[cands[i].m.Name] < rankOf[cands[j].m.Name]
	})

	epoch := maxEpoch + 1
	for attempt, cand := range cands {
		// Fence every other candidate first, so no copy passed over in
		// this round can be promoted at a stale epoch later.
		body, _ := json.Marshal(map[string]uint64{"epoch": epoch})
		for _, other := range cands {
			if other.m.Name == cand.m.Name {
				continue
			}
			ctx, cancel := timeoutContext(r.stop, r.cfg.HealthTimeout)
			r.do(ctx, http.MethodPost, other.m.URL+"/v1/replica/sessions/"+id+"/fence", body) //nolint:errcheck // best-effort; the winner's Take re-fences
			cancel()
		}
		// The promoted session re-replicates to the surviving members'
		// rendezvous ranking, winner excluded.
		var reps []Member
		for _, m := range ranked {
			if len(reps) == r.cfg.Replicas-1 {
				break
			}
			if m.Name != cand.m.Name {
				reps = append(reps, m.Member)
			}
		}
		adoptBody, err := json.Marshal(struct {
			Epoch    uint64   `json:"epoch"`
			Replicas []Member `json:"replicas,omitempty"`
		}{Epoch: epoch, Replicas: reps})
		if err != nil {
			return nil, err
		}
		ctx, cancel := timeoutContext(r.stop, r.cfg.MigrateTimeout)
		status, raw, err := r.do(ctx, http.MethodPost, cand.m.URL+"/v1/replica/sessions/"+id+"/adopt", adoptBody)
		cancel()
		if err == nil && status == http.StatusOK {
			return cand.m, nil
		}
		detail := firstLine(raw)
		if err != nil {
			detail = err.Error()
		}
		r.log.Warn("fleet.adopt.candidate", "session", id, "member", cand.m.Name,
			"attempt", attempt, "status", status, "error", detail)
		// The failed candidate's copy is fenced at epoch (its own Take did
		// that); the next attempt moves past it.
		epoch++
	}
	return nil, fmt.Errorf("fleet: session %s: every replica candidate failed to adopt", id)
}
