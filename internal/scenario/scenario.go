// Package scenario models concrete metric combinations ("scenarios" in
// the paper's terminology) and the bounded metric space they live in.
//
// A scenario is one concrete combination of design metrics — for the
// SWAN case study, a (throughput, latency) pair. The paper's
// ClosedInRange constraint (§4.2) is represented by Space: every metric
// has a closed range, and all generated scenarios stay inside the box.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"compsynth/internal/interval"
)

// Scenario is a point in metric space; values are positional per the
// owning Space's metric ordering.
type Scenario []float64

// Clone returns an independent copy.
func (s Scenario) Clone() Scenario { return append(Scenario(nil), s...) }

// Equal reports exact equality of two scenarios.
func (s Scenario) Equal(other Scenario) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports equality within tol in every coordinate.
func (s Scenario) AlmostEqual(other Scenario, tol float64) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if math.Abs(s[i]-other[i]) > tol {
			return false
		}
	}
	return true
}

// Dist returns the Euclidean distance between two scenarios.
func (s Scenario) Dist(other Scenario) float64 {
	if len(s) != len(other) {
		return math.Inf(1)
	}
	var sum float64
	for i := range s {
		d := s[i] - other[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Space is a bounded metric space: named metrics, each with a closed
// range. It encodes the paper's ClosedInRange constraints (for SWAN:
// throughput ∈ [0,10] Gbps, latency ∈ [0,200] ms).
type Space struct {
	names  []string
	ranges []interval.Interval
	index  map[string]int
}

// NewSpace builds a metric space. Names must be unique and ranges
// non-empty with finite bounds.
func NewSpace(names []string, ranges []interval.Interval) (*Space, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: empty metric space")
	}
	if len(names) != len(ranges) {
		return nil, fmt.Errorf("scenario: %d names but %d ranges", len(names), len(ranges))
	}
	sp := &Space{
		names:  append([]string(nil), names...),
		ranges: append([]interval.Interval(nil), ranges...),
		index:  make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("scenario: empty metric name at %d", i)
		}
		if _, dup := sp.index[n]; dup {
			return nil, fmt.Errorf("scenario: duplicate metric %q", n)
		}
		sp.index[n] = i
		r := ranges[i]
		if r.IsEmpty() {
			return nil, fmt.Errorf("scenario: empty range for %q", n)
		}
		if math.IsInf(r.Lo, 0) || math.IsInf(r.Hi, 0) {
			return nil, fmt.Errorf("scenario: unbounded range for %q", n)
		}
	}
	return sp, nil
}

// MustNewSpace is NewSpace but panics on error.
func MustNewSpace(names []string, ranges []interval.Interval) *Space {
	sp, err := NewSpace(names, ranges)
	if err != nil {
		panic(err)
	}
	return sp
}

// SWANSpace returns the metric space of the paper's SWAN case study:
// throughput ∈ [0, 10] Gbps and latency ∈ [0, 200] ms.
func SWANSpace() *Space {
	return MustNewSpace(
		[]string{"throughput", "latency"},
		[]interval.Interval{interval.New(0, 10), interval.New(0, 200)},
	)
}

// Dim returns the number of metrics.
func (sp *Space) Dim() int { return len(sp.names) }

// Names returns the metric names in order.
func (sp *Space) Names() []string { return append([]string(nil), sp.names...) }

// Ranges returns the metric ranges in order.
func (sp *Space) Ranges() []interval.Interval {
	return append([]interval.Interval(nil), sp.ranges...)
}

// Range returns the range of the named metric.
func (sp *Space) Range(name string) (interval.Interval, bool) {
	i, ok := sp.index[name]
	if !ok {
		return interval.Empty(), false
	}
	return sp.ranges[i], true
}

// Index returns the position of the named metric.
func (sp *Space) Index(name string) (int, bool) {
	i, ok := sp.index[name]
	return i, ok
}

// Contains reports whether s lies inside the box.
func (sp *Space) Contains(s Scenario) bool {
	if len(s) != len(sp.ranges) {
		return false
	}
	for i, v := range s {
		if !sp.ranges[i].Contains(v) {
			return false
		}
	}
	return true
}

// Clamp returns s with every coordinate clamped into its range.
func (sp *Space) Clamp(s Scenario) Scenario {
	out := make(Scenario, len(sp.ranges))
	for i := range sp.ranges {
		v := 0.0
		if i < len(s) {
			v = s[i]
		}
		out[i] = sp.ranges[i].Clamp(v)
	}
	return out
}

// Random returns a uniformly random scenario inside the box.
func (sp *Space) Random(rng *rand.Rand) Scenario {
	s := make(Scenario, len(sp.ranges))
	for i, r := range sp.ranges {
		s[i] = r.Lo + rng.Float64()*r.Width()
	}
	return s
}

// RandomN returns n independent random scenarios.
func (sp *Space) RandomN(rng *rand.Rand, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = sp.Random(rng)
	}
	return out
}

// LatinHypercube returns n scenarios via Latin hypercube sampling:
// every metric's range is cut into n strata and each stratum is hit
// exactly once, giving far better coverage than uniform sampling for
// small n. It is a good InitialScenarioSource when the user rates only
// a handful of initial scenarios.
func (sp *Space) LatinHypercube(rng *rand.Rand, n int) []Scenario {
	if n <= 0 {
		return nil
	}
	out := make([]Scenario, n)
	for i := range out {
		out[i] = make(Scenario, len(sp.ranges))
	}
	for d, r := range sp.ranges {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			stratum := float64(perm[i])
			out[i][d] = r.Lo + r.Width()*(stratum+rng.Float64())/float64(n)
		}
	}
	return out
}

// Grid returns the scenarios of a regular grid with pointsPerDim points
// per metric (inclusive of both range endpoints; pointsPerDim must be
// at least 2). The grid is used for behavioral-equivalence validation.
func (sp *Space) Grid(pointsPerDim int) []Scenario {
	if pointsPerDim < 2 {
		panic("scenario: Grid needs at least 2 points per dimension")
	}
	total := 1
	for range sp.ranges {
		total *= pointsPerDim
	}
	out := make([]Scenario, 0, total)
	idx := make([]int, len(sp.ranges))
	for {
		s := make(Scenario, len(sp.ranges))
		for d, r := range sp.ranges {
			s[d] = r.Lo + r.Width()*float64(idx[d])/float64(pointsPerDim-1)
		}
		out = append(out, s)
		// Odometer increment.
		d := 0
		for ; d < len(idx); d++ {
			idx[d]++
			if idx[d] < pointsPerDim {
				break
			}
			idx[d] = 0
		}
		if d == len(idx) {
			return out
		}
	}
}

// Format renders a scenario with metric names, e.g.
// "(throughput=2.5, latency=100)".
func (sp *Space) Format(s Scenario) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, n := range sp.names {
		if i > 0 {
			b.WriteString(", ")
		}
		v := math.NaN()
		if i < len(s) {
			v = s[i]
		}
		fmt.Fprintf(&b, "%s=%.4g", n, v)
	}
	b.WriteByte(')')
	return b.String()
}

// Store assigns stable integer IDs to scenarios so they can be used as
// preference-graph vertices. Scenarios are deduplicated by tolerance:
// two scenarios within dedupTol in every coordinate share an ID, which
// keeps the preference graph free of near-duplicate vertices that would
// force numerically meaningless constraints.
type Store struct {
	space    *Space
	items    []Scenario
	dedupTol float64
}

// NewStore creates a store for scenarios of the given space. dedupTol
// may be 0 for exact matching.
func NewStore(space *Space, dedupTol float64) *Store {
	return &Store{space: space, dedupTol: dedupTol}
}

// Space returns the metric space.
func (st *Store) Space() *Space { return st.space }

// Add interns the scenario and returns its ID. Scenarios outside the
// space are rejected.
func (st *Store) Add(s Scenario) (int, error) {
	if !st.space.Contains(s) {
		return 0, fmt.Errorf("scenario: %s outside space", st.space.Format(s))
	}
	for id, existing := range st.items {
		if existing.AlmostEqual(s, st.dedupTol) {
			return id, nil
		}
	}
	st.items = append(st.items, s.Clone())
	return len(st.items) - 1, nil
}

// Find returns the ID of an already-interned scenario matching s within
// the dedup tolerance, without interning anything. It is the read-only
// side of Add, used by the query planner to test whether a sampled
// scenario is already a preference-graph vertex.
func (st *Store) Find(s Scenario) (int, bool) {
	for id, existing := range st.items {
		if existing.AlmostEqual(s, st.dedupTol) {
			return id, true
		}
	}
	return 0, false
}

// Get returns the scenario with the given ID.
func (st *Store) Get(id int) (Scenario, bool) {
	if id < 0 || id >= len(st.items) {
		return nil, false
	}
	return st.items[id], true
}

// Len returns the number of stored scenarios.
func (st *Store) Len() int { return len(st.items) }

// All returns every stored scenario, indexed by ID.
func (st *Store) All() []Scenario {
	out := make([]Scenario, len(st.items))
	for i, s := range st.items {
		out[i] = s.Clone()
	}
	return out
}
