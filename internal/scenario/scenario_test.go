package scenario

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"compsynth/internal/interval"
)

func TestNewSpaceValidation(t *testing.T) {
	cases := []struct {
		names  []string
		ranges []interval.Interval
	}{
		{nil, nil},
		{[]string{"a"}, nil},
		{[]string{"a", "a"}, []interval.Interval{interval.New(0, 1), interval.New(0, 1)}},
		{[]string{""}, []interval.Interval{interval.New(0, 1)}},
		{[]string{"a"}, []interval.Interval{interval.Empty()}},
		{[]string{"a"}, []interval.Interval{interval.New(0, math.Inf(1))}},
	}
	for i, c := range cases {
		if _, err := NewSpace(c.names, c.ranges); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
	if _, err := NewSpace([]string{"x"}, []interval.Interval{interval.New(0, 1)}); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestSWANSpace(t *testing.T) {
	sp := SWANSpace()
	if sp.Dim() != 2 {
		t.Fatalf("Dim = %d", sp.Dim())
	}
	r, ok := sp.Range("throughput")
	if !ok || r != interval.New(0, 10) {
		t.Errorf("throughput range = %v", r)
	}
	r, ok = sp.Range("latency")
	if !ok || r != interval.New(0, 200) {
		t.Errorf("latency range = %v", r)
	}
	if _, ok := sp.Range("nope"); ok {
		t.Error("unknown metric found")
	}
	if i, ok := sp.Index("latency"); !ok || i != 1 {
		t.Errorf("Index(latency) = %d, %v", i, ok)
	}
}

func TestContainsAndClamp(t *testing.T) {
	sp := SWANSpace()
	if !sp.Contains(Scenario{5, 100}) {
		t.Error("inside point rejected")
	}
	if sp.Contains(Scenario{-1, 100}) || sp.Contains(Scenario{5, 201}) {
		t.Error("outside point accepted")
	}
	if sp.Contains(Scenario{5}) {
		t.Error("wrong-arity scenario accepted")
	}
	c := sp.Clamp(Scenario{-5, 500})
	if c[0] != 0 || c[1] != 200 {
		t.Errorf("Clamp = %v", c)
	}
	// Clamp pads missing coordinates.
	c = sp.Clamp(Scenario{5})
	if len(c) != 2 || c[0] != 5 || c[1] != 0 {
		t.Errorf("Clamp short = %v", c)
	}
}

func TestRandomInsideSpace(t *testing.T) {
	sp := SWANSpace()
	rng := rand.New(rand.NewSource(3))
	for _, s := range sp.RandomN(rng, 1000) {
		if !sp.Contains(s) {
			t.Fatalf("Random produced %v outside space", s)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	sp := SWANSpace()
	a := sp.RandomN(rand.New(rand.NewSource(9)), 10)
	b := sp.RandomN(rand.New(rand.NewSource(9)), 10)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different scenarios")
		}
	}
}

func TestGrid(t *testing.T) {
	sp := SWANSpace()
	g := sp.Grid(3)
	if len(g) != 9 {
		t.Fatalf("Grid(3) size = %d, want 9", len(g))
	}
	// Corners present.
	corners := []Scenario{{0, 0}, {10, 0}, {0, 200}, {10, 200}}
	for _, c := range corners {
		found := false
		for _, s := range g {
			if s.AlmostEqual(c, 1e-12) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("corner %v missing from grid", c)
		}
	}
	for _, s := range g {
		if !sp.Contains(s) {
			t.Errorf("grid point %v outside space", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Grid(1) did not panic")
		}
	}()
	sp.Grid(1)
}

func TestScenarioOps(t *testing.T) {
	a := Scenario{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !a.Equal(Scenario{1, 2}) || a.Equal(Scenario{1, 3}) || a.Equal(Scenario{1}) {
		t.Error("Equal wrong")
	}
	if !a.AlmostEqual(Scenario{1.0001, 2}, 0.001) {
		t.Error("AlmostEqual too strict")
	}
	if a.AlmostEqual(Scenario{1.1, 2}, 0.001) {
		t.Error("AlmostEqual too lax")
	}
	if d := (Scenario{0, 0}).Dist(Scenario{3, 4}); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d := (Scenario{0}).Dist(Scenario{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("Dist arity mismatch = %v", d)
	}
}

func TestFormat(t *testing.T) {
	sp := SWANSpace()
	s := sp.Format(Scenario{2.5, 100})
	if !strings.Contains(s, "throughput=2.5") || !strings.Contains(s, "latency=100") {
		t.Errorf("Format = %q", s)
	}
}

func TestStoreAddGetDedup(t *testing.T) {
	sp := SWANSpace()
	st := NewStore(sp, 1e-9)
	id1, err := st.Add(Scenario{2, 100})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Add(Scenario{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Error("distinct scenarios share ID")
	}
	id3, err := st.Add(Scenario{2, 100})
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Error("duplicate scenario got new ID")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
	got, ok := st.Get(id2)
	if !ok || !got.Equal(Scenario{5, 10}) {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := st.Get(99); ok {
		t.Error("Get out of range succeeded")
	}
	if _, ok := st.Get(-1); ok {
		t.Error("Get negative succeeded")
	}
}

func TestStoreToleranceDedup(t *testing.T) {
	st := NewStore(SWANSpace(), 0.01)
	id1, _ := st.Add(Scenario{2, 100})
	id2, _ := st.Add(Scenario{2.005, 100.005})
	if id1 != id2 {
		t.Error("near-duplicate not deduplicated")
	}
	id3, _ := st.Add(Scenario{2.5, 100})
	if id3 == id1 {
		t.Error("distinct scenario deduplicated")
	}
}

func TestStoreRejectsOutside(t *testing.T) {
	st := NewStore(SWANSpace(), 0)
	if _, err := st.Add(Scenario{-1, 0}); err == nil {
		t.Error("outside scenario accepted")
	}
}

func TestStoreAllIsCopy(t *testing.T) {
	st := NewStore(SWANSpace(), 0)
	if _, err := st.Add(Scenario{1, 1}); err != nil {
		t.Fatal(err)
	}
	all := st.All()
	all[0][0] = 99
	got, _ := st.Get(0)
	if got[0] != 1 {
		t.Error("All exposed internal storage")
	}
}

func TestSpaceAccessorsAreCopies(t *testing.T) {
	sp := SWANSpace()
	n := sp.Names()
	n[0] = "mutated"
	if sp.Names()[0] != "throughput" {
		t.Error("Names exposed internal slice")
	}
	r := sp.Ranges()
	r[0] = interval.New(-1, 1)
	if got := sp.Ranges()[0]; got != interval.New(0, 10) {
		t.Error("Ranges exposed internal slice")
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	sp := SWANSpace()
	rng := rand.New(rand.NewSource(8))
	n := 10
	scs := sp.LatinHypercube(rng, n)
	if len(scs) != n {
		t.Fatalf("got %d scenarios", len(scs))
	}
	// Each dimension: exactly one sample per stratum.
	for d, r := range sp.Ranges() {
		seen := make([]bool, n)
		for _, s := range scs {
			if !r.Contains(s[d]) {
				t.Fatalf("sample %v outside range in dim %d", s[d], d)
			}
			stratum := int((s[d] - r.Lo) / r.Width() * float64(n))
			if stratum == n {
				stratum = n - 1
			}
			if seen[stratum] {
				t.Fatalf("dim %d stratum %d hit twice", d, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestLatinHypercubeEdgeCases(t *testing.T) {
	sp := SWANSpace()
	rng := rand.New(rand.NewSource(9))
	if got := sp.LatinHypercube(rng, 0); got != nil {
		t.Error("n=0 returned scenarios")
	}
	one := sp.LatinHypercube(rng, 1)
	if len(one) != 1 || !sp.Contains(one[0]) {
		t.Errorf("n=1 = %v", one)
	}
}
