package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"
)

// Logger is the structured logging spine of the second observability
// layer: a thin wrapper over a log/slog JSON handler that follows the
// registry's nil-safe convention — a nil *Logger disables everything,
// and the hot-path Event method is zero-alloc in that mode (pinned by
// TestLoggerNilZeroAlloc), so instrumented code never branches on
// whether logging is enabled.
//
// A Logger carries bound attributes (With) that are stamped onto every
// record, which is how the service layer scopes records per session and
// per request, and an optional FlightRecorder tee (WithRecorder): the
// recorder receives every record regardless of the handler's level
// filter, so a post-mortem dump shows debug detail even when the live
// stream is filtered to info and above.
//
// Loggers are immutable after construction; With/WithRecorder return
// derived copies, and all methods are safe for concurrent use (the
// slog JSON handler serializes writes internally).
type Logger struct {
	h     slog.Handler
	attrs []slog.Attr
	fr    *FlightRecorder
}

// NewLogger builds a JSON logger writing to w at the given minimum
// level. A nil w makes the logger record-only: nothing streams out, but
// an attached FlightRecorder still captures every record — the mode a
// daemon with logging disabled uses so flight dumps keep working.
func NewLogger(w io.Writer, level slog.Level) *Logger {
	l := &Logger{}
	if w != nil {
		l.h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	}
	return l
}

// ParseLevel maps the -log-level flag values ("debug", "info", "warn",
// "error", case-insensitive) onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(strings.TrimSpace(s))); err != nil {
		return 0, err
	}
	return lv, nil
}

// OpenLogger resolves the CLI -log/-log-level flag pair shared by all
// three binaries: dest "" or "off" disables logging entirely (nil
// logger), "stderr" and "stdout" stream to the process descriptors, and
// anything else opens (appends to) a file. The returned close func
// flushes and closes a file destination; it is non-nil even when there
// is nothing to close.
func OpenLogger(dest, level string) (*Logger, func() error, error) {
	nop := func() error { return nil }
	switch strings.TrimSpace(dest) {
	case "", "off", "none":
		return nil, nop, nil
	}
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, nop, err
	}
	switch dest {
	case "stderr":
		return NewLogger(os.Stderr, lv), nop, nil
	case "stdout":
		return NewLogger(os.Stdout, lv), nop, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nop, err
	}
	return NewLogger(f, lv), f.Close, nil
}

// With returns a logger whose records all carry the given key-value
// pairs (slog argument conventions) in addition to the receiver's bound
// attributes. Nil-safe: a nil logger stays nil.
//
// Bound attributes are kept on the Logger rather than pushed into the
// handler so the FlightRecorder tee sees them too — a per-session
// logger's "session" attribute must survive into the flight dump, where
// it is the record-filtering key.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || len(args) == 0 {
		return l
	}
	nl := *l
	nl.attrs = append(append([]slog.Attr(nil), l.attrs...), argsToAttrs(args)...)
	return &nl
}

// WithRecorder returns a logger teeing every record — regardless of
// level — into fr. Nil-safe on both sides.
func (l *Logger) WithRecorder(fr *FlightRecorder) *Logger {
	if l == nil || fr == nil {
		return l
	}
	nl := *l
	nl.fr = fr
	return &nl
}

// Recorder returns the attached flight recorder, if any.
func (l *Logger) Recorder() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.fr
}

// Enabled reports whether a record at the given level would go
// anywhere (handler or flight recorder).
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	if l.fr != nil {
		return true
	}
	return l.h != nil && l.h.Enabled(context.Background(), level)
}

// Event emits a structured record built from the tracer's typed Attr
// values — the hot-path emission API. The typed attributes avoid
// interface boxing, and the leading nil/enabled check returns before
// anything escapes, so a disabled logger costs zero allocations per
// call (the contract the prune loop relies on; see
// TestLoggerNilZeroAlloc and the solver's emitWave guard).
func (l *Logger) Event(level slog.Level, msg string, attrs ...Attr) {
	if l == nil || !l.Enabled(level) {
		return
	}
	r := slog.NewRecord(time.Now(), level, msg, 0)
	r.AddAttrs(l.attrs...)
	for _, a := range attrs {
		if a.str {
			r.AddAttrs(slog.String(a.Key, a.S))
		} else {
			r.AddAttrs(slog.Float64(a.Key, a.Value))
		}
	}
	l.emit(level, r)
}

// Debug emits a debug record with slog-convention key-value args.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args) }

// Info emits an info record with slog-convention key-value args.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args) }

// Warn emits a warning record with slog-convention key-value args.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args) }

// Error emits an error record with slog-convention key-value args.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args) }

func (l *Logger) log(level slog.Level, msg string, args []any) {
	if l == nil || !l.Enabled(level) {
		return
	}
	r := slog.NewRecord(time.Now(), level, msg, 0)
	r.AddAttrs(l.attrs...)
	r.Add(args...)
	l.emit(level, r)
}

// emit fans a finished record out to the handler (level-filtered) and
// the flight recorder (unfiltered).
func (l *Logger) emit(level slog.Level, r slog.Record) {
	if l.h != nil && l.h.Enabled(context.Background(), level) {
		l.h.Handle(context.Background(), r) //nolint:errcheck // destination write error has no recovery
	}
	if l.fr != nil {
		l.fr.add(r)
	}
}

// argsToAttrs converts slog-convention key-value args into attributes,
// using a scratch record so bad-key handling matches slog exactly.
func argsToAttrs(args []any) []slog.Attr {
	var r slog.Record
	r.Add(args...)
	out := make([]slog.Attr, 0, r.NumAttrs())
	r.Attrs(func(a slog.Attr) bool {
		out = append(out, a)
		return true
	})
	return out
}
