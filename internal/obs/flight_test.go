package obs

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"testing"
)

// TestFlightRecorderRingWrap checks the bounded ring: oldest records
// fall off, Records comes back oldest-first, Dropped counts the loss.
func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	l := NewLogger(nil, slog.LevelDebug).WithRecorder(fr)
	for i := 0; i < 10; i++ {
		l.Info(fmt.Sprintf("e%d", i), "i", i)
	}
	if fr.Len() != 4 || fr.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 4/6", fr.Len(), fr.Dropped())
	}
	recs := fr.Records()
	for i, r := range recs {
		want := fmt.Sprintf("e%d", 6+i)
		if r.Msg != want {
			t.Errorf("record %d = %q, want %q (oldest-first tail)", i, r.Msg, want)
		}
		if r.Attrs["i"] != int64(6+i) {
			t.Errorf("record %d attrs = %v", i, r.Attrs)
		}
		if r.Level != "INFO" {
			t.Errorf("record %d level = %q", i, r.Level)
		}
	}
}

// TestFlightDumpSessionFilter pins the dump shape: records for other
// sessions are excluded, the span tail rides along, and the file
// round-trips through WriteFile/ReadFlightDump.
func TestFlightDumpSessionFilter(t *testing.T) {
	fr := NewFlightRecorder(16)
	base := NewLogger(nil, slog.LevelDebug).WithRecorder(fr)
	base.Info("daemon.start")
	base.With("session", "s1").Info("session.create")
	base.With("session", "s2").Info("session.create")
	base.With("session", "s1").Debug("solver.prune.wave", "depth", 1)

	tr := NewTracer(8)
	tr.SetLabel("session", "s1")
	tr.Begin("solve").End(Num("boxes", 2))

	d := fr.Dump("s1", "failure", tr)
	if d.Session != "s1" || d.Reason != "failure" {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Records) != 2 {
		t.Fatalf("records = %d, want 2 (s1 only): %+v", len(d.Records), d.Records)
	}
	for _, r := range d.Records {
		if r.Attrs["session"] != "s1" {
			t.Errorf("foreign record leaked into dump: %+v", r)
		}
	}
	if len(d.Spans) != 1 || d.Spans[0].Labels["session"] != "s1" {
		t.Fatalf("spans = %+v", d.Spans)
	}

	path := filepath.Join(t.TempDir(), "s1.flight.json")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != "s1" || got.Reason != "failure" || len(got.Records) != 2 || len(got.Spans) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// TestFlightDumpUnfiltered covers session == "": everything in the ring
// is dumped (the SIGQUIT whole-process path) and a nil tracer is fine.
func TestFlightDumpUnfiltered(t *testing.T) {
	fr := NewFlightRecorder(8)
	l := NewLogger(nil, slog.LevelDebug).WithRecorder(fr)
	l.Info("a")
	l.With("session", "s1").Info("b")
	d := fr.Dump("", "sigquit", nil)
	if len(d.Records) != 2 || len(d.Spans) != 0 {
		t.Fatalf("dump = %+v", d)
	}
}

// TestFlightDumpNilRecorder: a nil recorder dumps nothing but does not
// panic — failure paths must be safe when logging is fully off.
func TestFlightDumpNilRecorder(t *testing.T) {
	var fr *FlightRecorder
	if d := fr.Dump("s1", "failure", nil); d != nil {
		t.Fatalf("nil recorder dump = %+v, want nil", d)
	}
	if fr.Len() != 0 || fr.Dropped() != 0 || fr.Records() != nil {
		t.Fatal("nil recorder accessors not zero")
	}
}
