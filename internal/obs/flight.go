package obs

import (
	"encoding/json"
	"log/slog"
	"os"
	"sync"
	"time"
)

// DefaultFlightCapacity is the flight-recorder ring size when the
// configured capacity is zero. At a handful of records per request and
// per synthesis step, 512 records hold the last few minutes of a busy
// daemon — the window a post-mortem actually needs.
const DefaultFlightCapacity = 512

// flightSpanTail caps how many trailing spans a dump carries.
const flightSpanTail = 256

// LogRecord is one resolved log record retained by the flight
// recorder — the dump-file schema (DESIGN.md §13). Attribute values
// are resolved to plain JSON-able values at capture time, so a dump
// never holds live references into the session it describes.
type LogRecord struct {
	Time  time.Time      `json:"time"`
	Level string         `json:"level"`
	Msg   string         `json:"msg"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// FlightRecorder is a bounded in-memory ring of recent log records: the
// crash recorder behind session-failure, panic, and SIGQUIT dumps. It
// is attached to a Logger with WithRecorder and receives every record
// regardless of the logger's level filter. All methods are safe for
// concurrent use; a nil *FlightRecorder is a no-op.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []LogRecord
	next  int
	total uint64
	max   int
}

// NewFlightRecorder returns a recorder retaining the most recent
// `capacity` records (DefaultFlightCapacity if capacity ≤ 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]LogRecord, 0, capacity), max: capacity}
}

// add captures one slog record, resolving its attributes.
func (fr *FlightRecorder) add(r slog.Record) {
	if fr == nil {
		return
	}
	rec := LogRecord{Time: r.Time, Level: r.Level.String(), Msg: r.Message}
	if n := r.NumAttrs(); n > 0 {
		rec.Attrs = make(map[string]any, n)
		r.Attrs(func(a slog.Attr) bool {
			rec.Attrs[a.Key] = a.Value.Resolve().Any()
			return true
		})
	}
	fr.mu.Lock()
	if len(fr.buf) < fr.max {
		fr.buf = append(fr.buf, rec)
	} else {
		fr.buf[fr.next] = rec
	}
	fr.next = (fr.next + 1) % fr.max
	fr.total++
	fr.mu.Unlock()
}

// Len returns the number of retained records.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.buf)
}

// Dropped returns how many records the ring has overwritten.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.total <= uint64(fr.max) {
		return 0
	}
	return fr.total - uint64(fr.max)
}

// Records returns the retained records, oldest first.
func (fr *FlightRecorder) Records() []LogRecord {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.buf) < fr.max {
		return append([]LogRecord(nil), fr.buf...)
	}
	out := make([]LogRecord, 0, len(fr.buf))
	out = append(out, fr.buf[fr.next:]...)
	out = append(out, fr.buf[:fr.next]...)
	return out
}

// FlightDump is the on-disk post-mortem document: the filtered record
// ring plus the tail of a span tracer, written as <id>.flight.json next
// to the session's journal.
type FlightDump struct {
	// Session is the session the dump describes; empty for a whole-ring
	// dump (SIGQUIT without a session filter).
	Session string `json:"session,omitempty"`
	// Reason says why the dump happened: "failure", "panic", "sigquit".
	Reason   string    `json:"reason"`
	DumpedAt time.Time `json:"dumped_at"`
	// Dropped is how many older records the ring had already overwritten
	// by dump time — non-zero means the window is truncated.
	Dropped uint64       `json:"dropped,omitempty"`
	Records []LogRecord  `json:"records"`
	Spans   []SpanRecord `json:"spans,omitempty"`
}

// Dump assembles a post-mortem document. When session is non-empty only
// records carrying a matching "session" attribute are kept (the ring is
// shared across sessions; the attribute is the ownership key). tr, when
// non-nil, contributes its most recent spans.
func (fr *FlightRecorder) Dump(session, reason string, tr *Tracer) *FlightDump {
	if fr == nil {
		return nil
	}
	d := &FlightDump{
		Session:  session,
		Reason:   reason,
		DumpedAt: time.Now().UTC(),
		Dropped:  fr.Dropped(),
		Records:  []LogRecord{},
	}
	for _, rec := range fr.Records() {
		if session != "" {
			if got, ok := rec.Attrs["session"]; !ok || got != session {
				continue
			}
		}
		d.Records = append(d.Records, rec)
	}
	if spans := tr.Spans(); len(spans) > 0 {
		if len(spans) > flightSpanTail {
			spans = spans[len(spans)-flightSpanTail:]
		}
		d.Spans = spans
	}
	return d
}

// WriteFile writes the dump as indented JSON.
func (d *FlightDump) WriteFile(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFlightDump parses a dump file (the test and tooling side of
// WriteFile).
func ReadFlightDump(path string) (*FlightDump, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
