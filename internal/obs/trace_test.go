package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer(16)
	outer := tr.Begin("iteration")
	inner := tr.Begin("solve")
	inner.End(Num("status", 0))
	outer.End(Num("index", 1), Num("queries", 2))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Seq order: outer began first.
	if spans[0].Name != "iteration" || spans[1].Name != "solve" {
		t.Errorf("order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Depth != 0 || spans[1].Depth != 1 {
		t.Errorf("depths = %d, %d, want 0, 1", spans[0].Depth, spans[1].Depth)
	}
	if spans[0].Attrs["queries"] != 2 {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
	if spans[1].StartMicros < spans[0].StartMicros {
		t.Error("child started before parent")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Begin("e").End()
	}
	if tr.Len() != 4 {
		t.Errorf("retained = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	// The retained spans are the most recent four, in begin order.
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Errorf("spans out of order: %v", spans)
		}
	}
	if spans[len(spans)-1].Seq != 10 {
		t.Errorf("newest seq = %d, want 10", spans[len(spans)-1].Seq)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin("solve")
	tr.Begin("oracle").End()
	sp.End(Num("boxes", 12))

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if rec.Name == "" {
			t.Errorf("line %d has empty name", lines)
		}
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
}
