package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer(16)
	outer := tr.Begin("iteration")
	inner := tr.Begin("solve")
	inner.End(Num("status", 0))
	outer.End(Num("index", 1), Num("queries", 2))

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	// Seq order: outer began first.
	if spans[0].Name != "iteration" || spans[1].Name != "solve" {
		t.Errorf("order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Depth != 0 || spans[1].Depth != 1 {
		t.Errorf("depths = %d, %d, want 0, 1", spans[0].Depth, spans[1].Depth)
	}
	if spans[0].Attrs["queries"] != 2 {
		t.Errorf("attrs = %v", spans[0].Attrs)
	}
	if spans[1].StartMicros < spans[0].StartMicros {
		t.Error("child started before parent")
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Begin("e").End()
	}
	if tr.Len() != 4 {
		t.Errorf("retained = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	// The retained spans are the most recent four, in begin order.
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq <= spans[i-1].Seq {
			t.Errorf("spans out of order: %v", spans)
		}
	}
	if spans[len(spans)-1].Seq != 10 {
		t.Errorf("newest seq = %d, want 10", spans[len(spans)-1].Seq)
	}
}

// TestTracerLabels covers bound labels (SetLabel) and end-time Str
// attributes: spans recorded while a label is set carry it, removal
// stops the stamping, and an End-time Str wins a key collision.
func TestTracerLabels(t *testing.T) {
	tr := NewTracer(8)
	tr.Begin("before").End()
	tr.SetLabel("session", "s000042")
	tr.SetLabel("request_id", "req-1")
	tr.Begin("during").End(Str("phase", "solve"), Num("boxes", 3))
	tr.Begin("override").End(Str("request_id", "req-2"))
	tr.SetLabel("request_id", "")
	tr.Begin("after").End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	if spans[0].Labels != nil {
		t.Errorf("pre-label span has labels %v", spans[0].Labels)
	}
	during := spans[1]
	if during.Labels["session"] != "s000042" || during.Labels["request_id"] != "req-1" {
		t.Errorf("bound labels missing: %v", during.Labels)
	}
	if during.Labels["phase"] != "solve" || during.Attrs["boxes"] != 3 {
		t.Errorf("end-time attrs wrong: labels=%v attrs=%v", during.Labels, during.Attrs)
	}
	if spans[2].Labels["request_id"] != "req-2" {
		t.Errorf("End-time Str should win collision: %v", spans[2].Labels)
	}
	if _, ok := spans[3].Labels["request_id"]; ok {
		t.Errorf("cleared label still stamped: %v", spans[3].Labels)
	}
	if spans[3].Labels["session"] != "s000042" {
		t.Errorf("remaining label lost: %v", spans[3].Labels)
	}
}

// TestTracerRingWrapWithLabels pins that wraparound preserves the
// newest spans' labels (the flight recorder reads exactly this tail).
func TestTracerRingWrapWithLabels(t *testing.T) {
	tr := NewTracer(3)
	tr.SetLabel("session", "s1")
	for i := 0; i < 8; i++ {
		tr.Begin("e").End(Num("i", float64(i)))
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained = %d, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Labels["session"] != "s1" {
			t.Fatalf("label lost across wrap: %+v", sp)
		}
	}
	if spans[2].Attrs["i"] != 7 {
		t.Errorf("newest span attr = %v, want 7", spans[2].Attrs["i"])
	}
}

// TestTracerConcurrentExport hammers span recording, label updates,
// and Export/Spans/WriteJSONL readers concurrently — run under -race
// (the Makefile race target includes internal/obs).
func TestTracerConcurrentExport(t *testing.T) {
	tr := NewTracer(32)
	var workers, exporter sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin("work")
				if i%7 == 0 {
					tr.SetLabel("request_id", "req")
				}
				sp.End(Num("i", float64(i)), Str("worker", "w"))
			}
		}()
	}
	exporter.Add(1)
	go func() {
		defer exporter.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Spans()
			_ = tr.Len()
			_ = tr.Dropped()
			var b strings.Builder
			if err := tr.WriteJSONL(&b); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
		}
	}()
	workers.Wait()
	close(stop)
	exporter.Wait()

	if tr.Len() != 32 {
		t.Fatalf("retained = %d, want full ring", tr.Len())
	}
	for _, sp := range tr.Spans() {
		if sp.Labels["worker"] != "w" {
			t.Fatalf("span lost its Str attr: %+v", sp)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin("solve")
	tr.Begin("oracle").End()
	sp.End(Num("boxes", 12))

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if rec.Name == "" {
			t.Errorf("line %d has empty name", lines)
		}
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
}
