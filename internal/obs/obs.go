// Package obs is the observability substrate of the repository: a
// concurrency-safe metrics registry (counters, gauges, histograms with
// fixed bucket layouts) plus a lightweight span tracer (trace.go) and
// an HTTP diagnostics edge (http.go) serving Prometheus text, expvar
// JSON, and pprof.
//
// The paper's whole evaluation is about *effort* — oracle queries,
// iterations, synthesis time — so effort must be measurable in a live
// process, not only in post-hoc result structs. Every layer of the
// stack (solver searches, sketch specialization caches, the synthesis
// loop, experiment runs) registers instruments here when observability
// is enabled.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrument method is nil-safe: a
//     nil *Counter/*Gauge/*Histogram (what a nil *Registry hands out)
//     is a no-op that allocates nothing, so instrumented hot paths run
//     at full speed with observability off. Call sites that need a
//     clock sample additionally guard time.Now with their own nil
//     check so even the clock read disappears.
//  2. No perturbation of determinism. Instruments only read clocks and
//     bump atomics; they never touch an RNG, so synthesis transcripts
//     are bit-identical with observability on and off (pinned by the
//     golden-transcript tests in internal/core).
//  3. Standard library only, like the rest of the repository.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/load via CAS on the bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	name, helpText string
	v              atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	name, helpText string
	v              atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add increments the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket i counts observations ≤ bounds[i], plus an
// implicit +Inf bucket). A nil *Histogram is a no-op.
type Histogram struct {
	name, helpText string
	bounds         []float64 // sorted upper bounds, +Inf implicit
	counts         []atomic.Int64
	sum            atomicFloat
	count          atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. v ≤ bound
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records n identical observations of v in one shot — the
// bulk form for callers that tally per-batch (e.g. the solver's prune
// engine observing a whole frontier wave at one depth) without paying
// n bucket searches.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// SecondsBuckets is the fixed bucket layout used for wall-clock timer
// histograms: 10µs up to 60s, roughly logarithmic. Solver searches sit
// in the µs–ms range, whole synthesis sessions in the 0.1–60s range,
// so one layout serves every timer in the stack.
func SecondsBuckets() []float64 {
	return []float64{
		1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 30, 60,
	}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start with the given factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// funcMetric is a read-through instrument: the value is produced by a
// callback at scrape time. It is how the registry exposes counters
// that already live elsewhere as atomics (solver.Stats, the sketch
// specialization caches) without adding a second write on hot paths.
type funcMetric struct {
	name, helpText, typ string
	fn                  func() float64
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use, and all
// getters are nil-safe: a nil *Registry hands out nil instruments,
// whose methods are no-ops — the zero-cost-when-disabled contract.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]*funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]*funcMetric),
	}
}

// checkName panics on names outside the Prometheus metric-name grammar
// — instrument names are compile-time constants, so this is a
// programmer error, not an input error.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// taken reports whether the name is already registered to a different
// instrument kind.
func (r *Registry) taken(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %s already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %s already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %s already registered as a histogram", name))
	}
	if _, ok := r.funcs[name]; ok && kind != "func" {
		panic(fmt.Sprintf("obs: %s already registered as a func metric", name))
	}
}

// Counter returns the named counter, creating it on first use.
// Repeated calls with the same name return the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.taken(name, "counter")
	c := &Counter{name: name, helpText: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.taken(name, "gauge")
	g := &Gauge{name: name, helpText: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (sorted ascending; +Inf is implicit).
// The bucket layout of an existing histogram is kept.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	if len(buckets) == 0 {
		buckets = SecondsBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.taken(name, "histogram")
	h := &Histogram{
		name:     name,
		helpText: help,
		bounds:   append([]float64(nil), buckets...),
		counts:   make([]atomic.Int64, len(buckets)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterFunc registers a read-through counter whose value is produced
// by fn at scrape time. Re-registering an existing name replaces the
// callback — sequential sessions sharing one registry (the experiment
// harness) each point the view at their own live counters; the
// exposition then reflects the most recent session.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "counter", fn)
}

// GaugeFunc registers a read-through gauge; see CounterFunc for the
// replacement semantics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "gauge", fn)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64) {
	if r == nil {
		return
	}
	checkName(name)
	if fn == nil {
		panic("obs: nil func metric callback")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.funcs[name]; ok {
		f.typ, f.helpText, f.fn = typ, help, fn
		return
	}
	r.taken(name, "func")
	r.funcs[name] = &funcMetric{name: name, helpText: help, typ: typ, fn: fn}
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case r.counters[n] != nil:
			c := r.counters[n]
			err = writeSimple(w, n, c.helpText, "counter", float64(c.Value()))
		case r.gauges[n] != nil:
			g := r.gauges[n]
			err = writeSimple(w, n, g.helpText, "gauge", g.Value())
		case r.funcs[n] != nil:
			f := r.funcs[n]
			err = writeSimple(w, n, f.helpText, f.typ, f.fn())
		case r.histograms[n] != nil:
			err = writeHistogram(w, r.histograms[n])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func writeSimple(w io.Writer, name, help, typ string, v float64) error {
	if err := writeHeader(w, name, help, typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	return err
}

func writeHistogram(w io.Writer, h *Histogram) error {
	if err := writeHeader(w, h.name, h.helpText, "histogram"); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
	return err
}

// Snapshot returns a plain nested map of every instrument's current
// value — the expvar / JSON view of the registry. Histograms render as
// {count, sum, buckets: {"le": cumulative}}.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, f := range r.funcs {
		out[n] = f.fn()
	}
	for n, h := range r.histograms {
		buckets := map[string]int64{}
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			buckets[formatFloat(bound)] = cum
		}
		cum += h.counts[len(h.bounds)].Load()
		buckets["+Inf"] = cum
		out[n] = map[string]any{
			"count":   h.Count(),
			"sum":     h.Sum(),
			"buckets": buckets,
		}
	}
	return out
}

// Observer bundles the observability sinks an instrumented component
// may write to: the metrics registry, the span tracer, and the
// structured logger. A nil *Observer (or nil fields) disables the
// corresponding sink; the Reg/Trace/Log accessors are nil-safe so call
// sites never branch.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	Logger   *Logger
}

// Reg returns the registry, or nil when the observer (or its registry)
// is disabled.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Trace returns the tracer, or nil when disabled.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Log returns the structured logger, or nil when disabled (nil *Logger
// methods are no-ops, so the result is always safe to use).
func (o *Observer) Log() *Logger {
	if o == nil {
		return nil
	}
	return o.Logger
}
