package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestServeEndpoints is the tier-1 -short smoke of the diagnostics
// endpoint: every route must answer, /metrics must be valid Prometheus
// text, /debug/vars valid JSON, and /trace valid JSONL.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total", "smoke counter").Add(3)
	reg.Histogram("smoke_seconds", "", nil).Observe(0.02)
	tr := NewTracer(8)
	tr.Begin("smoke").End(Num("ok", 1))

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		cli := &http.Client{Timeout: 5 * time.Second}
		resp, err := cli.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "smoke_total 3") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	assertPrometheusText(t, metrics)

	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	comp, ok := vars["compsynth"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing compsynth section: %v", vars)
	}
	if comp["smoke_total"] != 3.0 {
		t.Errorf("compsynth.smoke_total = %v, want 3", comp["smoke_total"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	var rec SpanRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(get("/trace"))), &rec); err != nil {
		t.Fatalf("/trace not valid JSONL: %v", err)
	}
	if rec.Name != "smoke" {
		t.Errorf("trace span = %q, want smoke", rec.Name)
	}

	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index missing profiles")
	}
	if !strings.Contains(get("/"), "/metrics") {
		t.Error("index page missing endpoint listing")
	}
}

// assertPrometheusText is a lightweight format validator: every
// non-comment line must be `name{labels} value` with a parseable float
// value, and every metric must be preceded by a TYPE comment.
func assertPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE comment: %q", line)
				continue
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] {
				base = b
				break
			}
		}
		if !typed[base] {
			t.Errorf("sample %q has no TYPE comment", name)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("sample %q has unparseable value %q", line, val)
		}
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", nil, nil); err == nil {
		t.Error("bogus address did not error")
	}
}
