package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCapacity is the span ring-buffer size used by the CLI
// edges. At one iteration span plus a handful of child spans per
// synthesis iteration, 4096 spans hold hundreds of iterations — an
// entire session — before the ring wraps.
const DefaultTraceCapacity = 4096

// SpanRecord is one completed span: a named, nested, timed event of
// the synthesis loop (solve → distinguish → oracle → edge-insert →
// system-rebuild). Timestamps are microseconds relative to the
// tracer's creation, so traces are diffable across runs and carry no
// wall-clock identity.
type SpanRecord struct {
	// Seq is the span's begin order (1-based). Spans are exported in
	// Seq order; a parent's Seq is always smaller than its children's.
	Seq uint64 `json:"seq"`
	// Name is the event name ("iteration", "solve", "oracle", ...).
	Name string `json:"name"`
	// Depth is the nesting level at Begin time (0 = top level).
	Depth int `json:"depth"`
	// StartMicros is the span start, µs since tracer creation.
	StartMicros int64 `json:"start_us"`
	// DurMicros is the span duration in µs.
	DurMicros int64 `json:"dur_us"`
	// Attrs are optional numeric attributes attached at End (iteration
	// index, query counts, solver status, ...).
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Labels are optional string attributes: the tracer's bound labels
	// (SetLabel — correlation identity like session and request IDs)
	// merged with any Str attributes attached at End.
	Labels map[string]string `json:"labels,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer.
// All methods are safe for concurrent use, and a nil *Tracer is a
// no-op: Begin returns a zero Span whose End does nothing, so
// instrumented code never branches on whether tracing is enabled.
//
// Depth tracking assumes spans on one tracer nest like a call stack
// (begin child after parent, end child before parent), which is how
// the synthesis loop — a single goroutine — uses it.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	buf     []SpanRecord // ring, valid up to min(total, len(buf))
	next    int          // ring write position
	total   uint64       // spans recorded ever
	seq     uint64       // spans begun ever
	depth   int          // current nesting level
	maxSpan int
	labels  map[string]string // bound labels, stamped on every recorded span
}

// NewTracer returns a tracer retaining the most recent `capacity`
// spans (DefaultTraceCapacity if capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), buf: make([]SpanRecord, 0, capacity), maxSpan: capacity}
}

// Span is an in-flight span handle. The zero Span (from a nil tracer)
// is inert.
type Span struct {
	t     *Tracer
	name  string
	seq   uint64
	depth int
	start time.Time
}

// Attr is a typed span/log attribute — numeric (Num) or string (Str).
// The concrete struct avoids interface boxing, which is what keeps
// disabled-mode emission (Span.End on an inert span, Logger.Event on a
// nil logger) at zero allocations.
type Attr struct {
	Key   string
	Value float64
	S     string
	str   bool
}

// Num builds a numeric attribute.
func Num(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute. On spans it lands in
// SpanRecord.Labels; on log records it becomes a string value.
func Str(key, v string) Attr { return Attr{Key: key, S: v, str: true} }

// Active reports whether the span will record on End. Call sites use
// it to skip building attribute slices when tracing is disabled.
func (s Span) Active() bool { return s.t != nil }

// Begin opens a span. Nil-safe: on a nil tracer it returns an inert
// handle without reading the clock.
func (t *Tracer) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.seq++
	sp := Span{t: t, name: name, seq: t.seq, depth: t.depth}
	t.depth++
	t.mu.Unlock()
	sp.start = time.Now()
	return sp
}

// End closes the span and records it. Calling End on an inert span is
// a no-op.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		Seq:         s.seq,
		Name:        s.name,
		Depth:       s.depth,
		StartMicros: s.start.Sub(s.t.epoch).Microseconds(),
		DurMicros:   end.Sub(s.start).Microseconds(),
	}
	for _, a := range attrs {
		if a.str {
			if rec.Labels == nil {
				rec.Labels = make(map[string]string)
			}
			rec.Labels[a.Key] = a.S
		} else {
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]float64, len(attrs))
			}
			rec.Attrs[a.Key] = a.Value
		}
	}
	t := s.t
	t.mu.Lock()
	if len(t.labels) > 0 {
		if rec.Labels == nil {
			rec.Labels = make(map[string]string, len(t.labels))
		}
		for k, v := range t.labels {
			// End-time Str attrs win over bound labels on a key collision.
			if _, ok := rec.Labels[k]; !ok {
				rec.Labels[k] = v
			}
		}
	}
	if t.depth > 0 {
		t.depth--
	}
	if len(t.buf) < t.maxSpan {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
	}
	t.next = (t.next + 1) % t.maxSpan
	t.total++
	t.mu.Unlock()
}

// SetLabel binds a string label stamped onto every span recorded from
// now on — the correlation hook: a per-session tracer carries
// "session", and the serving layer updates "request_id" to the request
// currently driving the session, so solver spans link back to the HTTP
// request that caused them. An empty value removes the label. Nil-safe
// and callable concurrently with span recording.
func (t *Tracer) SetLabel(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if value == "" {
		delete(t.labels, key)
		return
	}
	if t.labels == nil {
		t.labels = make(map[string]string)
	}
	t.labels[key] = value
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(t.maxSpan) {
		return 0
	}
	return t.total - uint64(t.maxSpan)
}

// Spans returns the retained spans in begin (Seq) order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.buf...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL writes the retained spans as JSON Lines (one span object
// per line) in begin order — the `-trace file.jsonl` dump format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range t.Spans() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
