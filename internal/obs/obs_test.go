package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Error("same name did not return the same counter")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-105.65) > 1e-9 {
		t.Errorf("sum = %v, want 105.65", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// le is cumulative: ≤0.1 holds 0.05 and 0.1, ≤1 adds 0.5, ≤10 adds 5,
	// +Inf adds 100.
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	r.CounterFunc("x", "", func() float64 { return 0 })
	r.GaugeFunc("x", "", func() float64 { return 0 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments retained state")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", b.String(), err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot non-empty")
	}

	var tr *Tracer
	sp := tr.Begin("nothing")
	sp.End(Num("k", 1))
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer retained spans")
	}
}

// TestNilInstrumentsAllocFree pins the zero-cost-when-disabled
// contract: instrument calls through nil receivers must not allocate.
func TestNilInstrumentsAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(1)
		sp := tr.Begin("x")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocate %v per op, want 0", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestFuncMetricsAndReplacement(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.CounterFunc("fn_total", "first", func() float64 { return v })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "fn_total 1") {
		t.Errorf("func counter missing:\n%s", b.String())
	}
	// Replacement: a new session re-registers the view over its own state.
	r.CounterFunc("fn_total", "second", func() float64 { return 42 })
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "fn_total 42") {
		t.Errorf("replaced func counter missing:\n%s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_clash", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge over an existing counter name did not panic")
		}
	}()
	r.Gauge("kind_clash", "")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
