package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the flag-gated diagnostics HTTP endpoint behind the CLI
// `-obs addr` flag. It serves:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (process vars plus the registry snapshot)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, ...)
//	/trace         the span ring buffer as JSON Lines (when a tracer is attached)
//
// It binds its own mux, so nothing leaks onto http.DefaultServeMux
// beyond the side effects of importing net/http/pprof.
type Server struct {
	srv *http.Server
	lis net.Listener
}

// Serve starts the diagnostics server on addr ("127.0.0.1:0" picks a
// free port; the chosen address is available via Addr). reg and tr may
// be nil — the corresponding endpoints then serve empty documents.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, tr),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(lis) //nolint:errcheck // shutdown error is the normal exit path
	return &Server{srv: srv, lis: lis}, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Shutdown stops the server gracefully: the listener closes
// immediately, in-flight requests (a slow /debug/pprof/profile, a
// metrics scrape) run until done or ctx expires, and at the deadline
// any stragglers are force-closed so Shutdown always returns.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close() //nolint:errcheck // best-effort after deadline
	}
	return err
}

// Close stops the server with a bounded grace period. Both CLIs and
// the daemon share this path, so a Ctrl-C during a profile capture
// still flushes the response instead of truncating it.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Handler returns the diagnostics mux; Serve wraps it, and embedding
// servers can mount it under their own routes.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "compsynth diagnostics")
		fmt.Fprintln(w, "  /metrics       Prometheus text")
		fmt.Fprintln(w, "  /debug/vars    expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/  pprof profiles")
		fmt.Fprintln(w, "  /trace         span log (JSONL)")
	})
	MountAll(mux, reg, tr)
	return mux
}

// MountAll registers the diagnostic routes (/metrics, /debug/vars,
// /debug/pprof/*, /trace) on an existing mux — the single mounting
// point shared by the standalone diagnostics Handler and servers that
// serve telemetry on their API listener (compsynthd). reg and tr may be
// nil; the corresponding endpoints then serve empty documents.
func MountAll(mux *http.ServeMux, reg *Registry, tr *Tracer) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
	})
	mux.HandleFunc("/debug/vars", varsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if tr != nil {
			tr.WriteJSONL(w) //nolint:errcheck // client disconnects only
		}
	})
}

// ServeSidecar is the CLI -obs edge shared by compsynth and
// experiments: start the diagnostics endpoint for the observer and
// print the standard banner to w (nil skips the banner). The caller
// defers Close on the returned server.
func ServeSidecar(addr string, o *Observer, w io.Writer) (*Server, error) {
	srv, err := Serve(addr, o.Reg(), o.Trace())
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "observability endpoint on http://%s/ (metrics, debug/vars, debug/pprof, trace)\n", srv.Addr())
	}
	return srv, nil
}

// varsHandler renders the expvar document — every published process
// var (memstats, cmdline, ...) plus the registry snapshot under the
// "compsynth" key. A custom handler instead of expvar.Publish keeps
// multiple registries in one process (tests) from colliding on the
// global publish namespace.
func varsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		expvar.Do(func(kv expvar.KeyValue) {
			fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
		})
		snap := expvar.Func(func() any { return reg.Snapshot() })
		fmt.Fprintf(w, "%q: %s\n}\n", "compsynth", snap.String())
	}
}
