package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestLoggerNilZeroAlloc is the acceptance guard for the disabled-mode
// hot path: nil-logger Event emission — the exact call the prune loop's
// emitWave makes — must allocate nothing.
func TestLoggerNilZeroAlloc(t *testing.T) {
	var l *Logger
	if a := testing.AllocsPerRun(200, func() {
		l.Event(slog.LevelDebug, "solver.prune.wave",
			Num("depth", 3), Num("boxes", 128), Num("pruned", 64))
	}); a != 0 {
		t.Fatalf("nil-logger Event: %v allocs/op, want 0", a)
	}
	// The convenience levels and derivations are nil-safe no-ops too.
	l.Debug("x", "k", 1)
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("k", "v") != nil || l.WithRecorder(NewFlightRecorder(1)) != nil {
		t.Fatal("derivations of a nil logger must stay nil")
	}
	if l.Enabled(slog.LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

// TestLoggerJSONAndBinding checks the JSON stream: records parse, carry
// bound attributes from With, level filtering applies, and Event's
// typed attrs land with the right JSON types.
func TestLoggerJSONAndBinding(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo).With("session", "s000001")

	l.Debug("invisible")
	l.Info("session.create", "seed", 42, "request_id", "req-abc")
	l.Event(slog.LevelWarn, "pool.saturated", Num("workers", 4), Str("op", "answer"))

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("log line is not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (debug filtered): %v", len(lines), lines)
	}
	info := lines[0]
	if info["msg"] != "session.create" || info["session"] != "s000001" {
		t.Errorf("bound attr missing: %v", info)
	}
	if info["request_id"] != "req-abc" || info["seed"] != float64(42) {
		t.Errorf("args missing: %v", info)
	}
	warn := lines[1]
	if warn["level"] != "WARN" || warn["workers"] != float64(4) || warn["op"] != "answer" {
		t.Errorf("Event attrs wrong: %v", warn)
	}
}

// TestLoggerRecorderSeesFilteredLevels pins the flight-recorder
// contract: the recorder captures records below the stream level, with
// bound attributes resolved, so post-mortems keep debug detail the live
// stream dropped.
func TestLoggerRecorderSeesFilteredLevels(t *testing.T) {
	var buf bytes.Buffer
	fr := NewFlightRecorder(8)
	l := NewLogger(&buf, slog.LevelError).With("session", "s9").WithRecorder(fr)

	l.Debug("solver.prune.wave", "depth", 2)
	l.Info("session.answer", "seq", 1)

	if strings.TrimSpace(buf.String()) != "" {
		t.Fatalf("stream should be empty below error: %q", buf.String())
	}
	recs := fr.Records()
	if len(recs) != 2 {
		t.Fatalf("recorder got %d records, want 2", len(recs))
	}
	if recs[0].Msg != "solver.prune.wave" || recs[0].Attrs["session"] != "s9" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Attrs["seq"] != int64(1) {
		t.Errorf("record 1 attrs = %+v", recs[1].Attrs)
	}
	if !l.Enabled(slog.LevelDebug) {
		t.Error("recorder-backed logger should report enabled at debug")
	}
}

// TestLoggerRecordOnly covers NewLogger(nil, ...): no stream, recorder
// still captures — the daemon's logging-off flight mode.
func TestLoggerRecordOnly(t *testing.T) {
	fr := NewFlightRecorder(4)
	l := NewLogger(nil, slog.LevelInfo).WithRecorder(fr)
	l.Info("session.fail", "error", "boom")
	if fr.Len() != 1 {
		t.Fatalf("recorder got %d records, want 1", fr.Len())
	}
	bare := NewLogger(nil, slog.LevelInfo)
	if bare.Enabled(slog.LevelError) {
		t.Error("record-only logger without recorder should be disabled")
	}
}

// TestLoggerConcurrent hammers one logger from several goroutines (the
// daemon shape: handler goroutines + advance goroutines share it) —
// meaningful under -race, and every interleaved line must stay valid
// JSON.
func TestLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	fr := NewFlightRecorder(64)
	l := NewLogger(w, slog.LevelDebug).WithRecorder(fr)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sl := l.With("session", "s", "g", g)
			for i := 0; i < 100; i++ {
				sl.Event(slog.LevelDebug, "e", Num("i", float64(i)))
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved line is not JSON: %v", err)
		}
	}
	if n != 400 {
		t.Fatalf("lines = %d, want 400", n)
	}
	if fr.Len() != 64 || fr.Dropped() != 400-64 {
		t.Fatalf("recorder len=%d dropped=%d", fr.Len(), fr.Dropped())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		" warn ": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestOpenLogger(t *testing.T) {
	for _, dest := range []string{"", "off", "none"} {
		l, closeFn, err := OpenLogger(dest, "info")
		if err != nil || l != nil {
			t.Errorf("OpenLogger(%q) = %v, err %v; want nil logger", dest, l, err)
		}
		closeFn()
	}
	if _, _, err := OpenLogger("stderr", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	path := filepath.Join(t.TempDir(), "d.log")
	l, closeFn, err := OpenLogger(path, "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &m); err != nil || m["msg"] != "hello" {
		t.Fatalf("file log line = %q (%v)", data, err)
	}
}
