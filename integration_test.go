package compsynth_test

import (
	"bytes"
	"math/rand"
	"testing"

	"compsynth/internal/abr"
	"compsynth/internal/core"
	"compsynth/internal/oracle"
	"compsynth/internal/scenario"
	"compsynth/internal/sketch"
	"compsynth/internal/solver"
	"compsynth/internal/te"
	"compsynth/internal/topo"
)

// fastCore returns a speed-tuned config for integration tests.
func fastCore(sk *sketch.Sketch, user oracle.Oracle, seed int64) core.Config {
	opts := solver.DefaultOptions()
	opts.Samples = 200
	opts.RepairRestarts = 6
	opts.RepairSteps = 80
	dopts := solver.DefaultDistinguishOptions()
	dopts.Candidates = 6
	dopts.PairSamples = 250
	dopts.Gamma = 2
	return core.Config{Sketch: sk, Oracle: user, Solver: opts, Distinguish: dopts, Seed: seed}
}

// TestEndToEndTEDesignSelection runs the full loop the paper targets:
// gravity traffic on a real topology, candidate designs from the TE
// substrate, objective synthesis from comparisons, and design selection
// by the learned objective. The learned objective must pick the same
// design the hidden target would pick.
func TestEndToEndTEDesignSelection(t *testing.T) {
	g := topo.Abilene()
	flows, err := te.GravityFlows(g, te.GravityConfig{Flows: 8, TotalDemand: 30},
		rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	n, err := te.NewNetwork(g, flows, 3)
	if err != nil {
		t.Fatal(err)
	}
	points, err := te.Evaluate(n, te.StandardSchemes(
		[]float64{0, 0.005, 0.02, 0.05}, []float64{0.5, 1}))
	if err != nil {
		t.Fatal(err)
	}

	sk := sketch.SWAN()
	target, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	synth, err := core.New(fastCore(sk, oracle.NewGroundTruth(target, 1e-9), 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("synthesis did not converge")
	}

	learnedRank := te.SelectDesign(points, res.Final)
	truthRank := te.SelectDesign(points, target)
	// The top pick must carry the same metrics under both objectives
	// (several schemes may tie with identical allocations, so compare
	// outcomes rather than names).
	lr, tr := learnedRank[0], truthRank[0]
	if lr.Throughput != tr.Throughput || lr.Latency != tr.Latency {
		t.Errorf("learned objective picked %q (%.2f, %.2f), ground truth picked %q (%.2f, %.2f)",
			lr.Name, lr.Throughput, lr.Latency, tr.Name, tr.Throughput, tr.Latency)
	}
}

// TestEndToEndABRSelection learns a QoE objective and checks it ranks
// the simulated ABR algorithms the same way the hidden QoE does.
func TestEndToEndABRSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	traces := []*abr.Trace{
		abr.Constant(3),
		abr.Stepped(5, 0.8, 20, 4),
		abr.RandomWalk(60, 3, 2, 0.4, 8, rng),
	}
	algos := []abr.Algorithm{abr.RateBased{}, abr.BufferBased{}, abr.BOLA{}, abr.Hybrid{}}

	sk := abr.QoESketch()
	hidden := map[string]float64{"w_bitrate": 3, "w_rebuffer": 15, "w_switches": 0.8, "w_startup": 0.4}
	holes := make([]float64, sk.NumHoles())
	for i, h := range sk.Holes() {
		holes[i] = hidden[h]
	}
	truth := sk.MustCandidate(holes)

	cfg := fastCore(sk, oracle.NewGroundTruth(truth, 1e-9), 9)
	cfg.Distinguish.Gamma = 1
	synth, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}

	meanQoE := func(obj *sketch.Candidate, a abr.Algorithm) float64 {
		var sum float64
		for _, tr := range traces {
			m, err := abr.Simulate(a, tr, abr.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sum += obj.Eval(sk.Space().Clamp(m.Scenario()))
		}
		return sum / float64(len(traces))
	}
	bestLearned, bestTruth := "", ""
	var bl, bt float64
	for i, a := range algos {
		l, tv := meanQoE(res.Final, a), meanQoE(truth, a)
		if i == 0 || l > bl {
			bestLearned, bl = a.Name(), l
		}
		if i == 0 || tv > bt {
			bestTruth, bt = a.Name(), tv
		}
	}
	if bestLearned != bestTruth {
		t.Errorf("learned QoE picks %q, hidden QoE picks %q", bestLearned, bestTruth)
	}
}

// TestEndToEndTranscriptReplay saves a session, replays it into a new
// synthesizer, and checks the replayed final candidate ranks scenarios
// like the original.
func TestEndToEndTranscriptReplay(t *testing.T) {
	sk := sketch.SWAN()
	target, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	user := oracle.NewGroundTruth(target, 1e-9)
	synth, err := core.New(fastCore(sk, user, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := core.Export(res).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := core.ReadTranscript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	synth2, err := core.New(fastCore(sk, user, 12))
	if err != nil {
		t.Fatal(err)
	}
	if err := synth2.Preload(tr); err != nil {
		t.Fatal(err)
	}
	res2, err := synth2.Run()
	if err != nil {
		t.Fatal(err)
	}
	pairs := oracle.RandomPairs(sk.Space(), 1500, rand.New(rand.NewSource(13)))
	frac, _ := oracle.Agreement(res.Oracle(), res2.Oracle(), pairs)
	if frac < 0.95 {
		t.Errorf("replayed session agreement = %.3f", frac)
	}
}

// TestEndToEndSimulatorSeededSynthesis uses TE-achievable scenarios
// (and Latin hypercube sampling) as the initial ranking, exercising the
// §6.1 simulator integration end to end.
func TestEndToEndSimulatorSeededSynthesis(t *testing.T) {
	g := topo.B4Like()
	flows, err := te.GravityFlows(g, te.GravityConfig{Flows: 6, TotalDemand: 25},
		rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	n, err := te.NewNetwork(g, flows, 3)
	if err != nil {
		t.Fatal(err)
	}
	sk := sketch.SWAN()
	achievable, err := te.SampleScenarios(n,
		te.StandardSchemes([]float64{0, 0.01, 0.05}, nil), sk.Space())
	if err != nil {
		t.Fatal(err)
	}
	target, err := sketch.DefaultSWANTarget.Candidate(sk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCore(sk, oracle.NewGroundTruth(target, 1e-9), 19)
	cfg.InitialScenarioSource = func(rng *rand.Rand, want int) []scenario.Scenario {
		out := append([]scenario.Scenario(nil), achievable...)
		out = append(out, sk.Space().LatinHypercube(rng, want)...)
		return out[:want]
	}
	synth, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("simulator-seeded synthesis did not converge")
	}
	ag := core.Validate(res, cfg.Oracle, 1500, rand.New(rand.NewSource(21)))
	if ag < 0.9 {
		t.Errorf("agreement = %.3f", ag)
	}
}
